"""Tests for repro.telemetry: probes, spans, export, and the
zero-overhead / determinism contracts the subsystem promises."""

from __future__ import annotations

import json

import pytest

from repro.experiments.registry import build_scenario
from repro.experiments.runner import (
    run_matrix,
    run_spec,
    run_spec_with_network,
    _worker_run,
)
from repro.experiments.spec import ScenarioSpec
from repro.experiments.store import ResultStore
from repro.perf.digest import run_digest
from repro.perf.golden import golden_specs
from repro.sim.engine import SimError, Simulator
from repro.sim.units import MICROSECOND
from repro.telemetry import (
    Series,
    TelemetryConfig,
    perfetto_trace,
    read_jsonl,
    write_jsonl,
    write_perfetto,
)

QUICK = dict(warmup_ns=20 * MICROSECOND, measure_ns=60 * MICROSECOND)
TELEM = {"sample_interval_ns": 5_000}


def quick_spec(kind: str = "stardust", **updates) -> ScenarioSpec:
    spec = build_scenario("permutation", kind=kind, **QUICK)
    return spec.with_updates(**updates) if updates else spec


def artifact_minus_meta(artifact: dict) -> dict:
    """The deterministic portion (meta holds wall-clock numbers)."""
    out = dict(artifact)
    out.pop("meta", None)
    return out


# ----------------------------------------------------------------------
# Config and series primitives
# ----------------------------------------------------------------------


class TestTelemetryConfig:
    def test_roundtrip(self):
        cfg = TelemetryConfig(sample_interval_ns=123, per_voq=True)
        assert TelemetryConfig.from_dict(cfg.to_dict()) == cfg

    def test_defaults_from_empty_dict(self):
        assert TelemetryConfig.from_dict({}) == TelemetryConfig()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry"):
            TelemetryConfig.from_dict({"cadence": 5})

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            TelemetryConfig(sample_interval_ns=0)


class TestSeries:
    def test_ring_eviction_counts_drops(self):
        s = Series("x", capacity=3)
        for i in range(5):
            s.append(i, float(i))
        assert len(s) == 3
        assert s.dropped == 2
        assert s.points() == [(2, 2.0), (3, 3.0), (4, 4.0)]
        assert s.last() == (4, 4.0)

    def test_to_dict_shape(self):
        s = Series("q", unit="bytes", capacity=8)
        s.append(10, 1.5)
        d = s.to_dict()
        assert d == {
            "name": "q", "unit": "bytes", "dropped": 0,
            "points": [[10, 1.5]],
        }


# ----------------------------------------------------------------------
# Engine probe hook
# ----------------------------------------------------------------------


class TestEngineProbe:
    def test_probe_samples_at_cadence(self):
        sim = Simulator()
        seen = []
        sim.set_probe(seen.append, 100)

        def _noop():
            pass

        for t in range(0, 1000, 10):
            sim.at(t + 1, _noop)
        sim.run()
        # One sample per 100ns interval that contained events.
        assert seen
        assert all(b - a >= 100 for a, b in zip(seen, seen[1:]))

    def test_probe_does_not_fire_events(self):
        def drive(probed: bool) -> int:
            sim = Simulator()
            if probed:
                sim.set_probe(lambda _t: None, 50)
            def _noop():
                pass
            for t in range(0, 500, 7):
                sim.at(t + 1, _noop)
            sim.run()
            return sim.events_fired

        assert drive(False) == drive(True)

    def test_clear_probe(self):
        sim = Simulator()
        seen = []
        sim.set_probe(seen.append, 10)
        sim.clear_probe()

        def _noop():
            pass

        sim.at(100, _noop)
        sim.run()
        assert seen == []

    def test_bad_interval_raises(self):
        sim = Simulator()
        with pytest.raises(SimError):
            sim.set_probe(lambda _t: None, 0)


# ----------------------------------------------------------------------
# Spec integration: hash neutrality
# ----------------------------------------------------------------------


class TestHashNeutrality:
    def test_unset_telemetry_omitted_from_dict(self):
        spec = quick_spec()
        assert "telemetry" not in spec.to_dict()

    def test_telemetry_does_not_change_content_hash(self):
        plain = quick_spec()
        instrumented = plain.with_updates(telemetry=TELEM)
        assert instrumented.telemetry is not None
        assert instrumented.content_hash() == plain.content_hash()

    def test_telemetry_survives_json_roundtrip(self):
        spec = quick_spec(telemetry=TELEM)
        again = ScenarioSpec.from_json(spec.to_json())
        assert again.telemetry == spec.telemetry

    def test_config_object_coerced_to_dict(self):
        spec = quick_spec(telemetry=TelemetryConfig().to_dict())
        assert isinstance(spec.telemetry, dict)

    def test_invalid_telemetry_rejected(self):
        with pytest.raises(ValueError):
            quick_spec(telemetry={"sample_interval_ns": -1})


# ----------------------------------------------------------------------
# Run integration: determinism and result neutrality
# ----------------------------------------------------------------------


class TestInstrumentedRuns:
    def test_results_identical_with_and_without_telemetry(self):
        plain = run_spec(quick_spec())
        instrumented = run_spec(quick_spec(telemetry=TELEM))
        assert instrumented.flow_rates_gbps == plain.flow_rates_gbps
        assert instrumented.events_fired == plain.events_fired
        assert instrumented.delivered_bytes == plain.delivered_bytes
        assert plain.telemetry is None
        assert instrumented.telemetry is not None

    def test_artifact_deterministic_across_runs(self):
        a = run_spec(quick_spec(telemetry=TELEM)).telemetry
        b = run_spec(quick_spec(telemetry=TELEM)).telemetry
        assert artifact_minus_meta(a) == artifact_minus_meta(b)

    def test_artifact_deterministic_across_shard_boundary(self):
        # The worker path serializes through JSON exactly like a
        # multiprocessing shard does.
        spec = quick_spec(telemetry=TELEM)
        inline = run_spec(spec).telemetry
        sharded = _worker_run(spec.to_json())["telemetry"]
        assert artifact_minus_meta(
            json.loads(json.dumps(artifact_minus_meta(inline)))
        ) == artifact_minus_meta(sharded)

    def test_artifacts_differ_across_seeds(self):
        a = run_spec(quick_spec(telemetry=TELEM)).telemetry
        b = run_spec(
            quick_spec(telemetry=TELEM).with_updates(seed=99)
        ).telemetry
        assert artifact_minus_meta(a) != artifact_minus_meta(b)

    def test_expected_series_present_stardust(self):
        art = run_spec(quick_spec(telemetry=TELEM)).telemetry
        names = {s["name"] for s in art["series"]}
        assert {
            "engine.events_fired", "engine.wheel_occupancy",
            "engine.spill_occupancy", "engine.corpse_count",
            "fabric.drops", "stardust.voq_bytes",
            "stardust.buffer_used_bytes",
            "stardust.credit_balance_bytes", "stardust.inflight_cells",
            "stardust.serializer_occupancy",
        } <= names
        assert art["samples"] > 0
        assert art["hints"]["link_rate_bps"] > 0

    def test_expected_series_present_push(self):
        art = run_spec(quick_spec(kind="tcp", telemetry=TELEM)).telemetry
        names = {s["name"] for s in art["series"]}
        assert {
            "push.queued_bytes", "push.inflight_frames",
            "push.dropped_frames",
        } <= names

    def test_per_voq_series_appear_lazily(self):
        art = run_spec(
            quick_spec(telemetry={**TELEM, "per_voq": True})
        ).telemetry
        voq_series = [
            s for s in art["series"] if s["name"].startswith("voq.")
        ]
        assert voq_series  # traffic created VOQs, VOQs created series

    def test_spans_cover_flows(self):
        art = run_spec(quick_spec(telemetry=TELEM)).telemetry
        assert art["spans"]
        for span in art["spans"]:
            assert span["packets_out"] > 0
            assert span["first_out_ns"] is not None

    def test_span_fct_breakdown_on_finished_flows(self):
        spec = build_scenario(
            "many_to_many", kind="stardust", flow_bytes=20_000
        ).with_updates(telemetry=TELEM)
        art = run_spec(spec).telemetry
        finished = [
            s for s in art["spans"] if s.get("fct_ns") is not None
        ]
        assert finished
        for span in finished:
            parts = (
                span["host_ns"] + span["serialization_ns"]
                + span["propagation_ns"] + span["queueing_ns"]
            )
            assert span["queueing_ns"] >= 0
            assert parts >= span["fct_ns"] - 1  # rounding slack


# ----------------------------------------------------------------------
# Golden byte-identity
# ----------------------------------------------------------------------


class TestGoldenNeutrality:
    def test_golden_digest_byte_identical_with_telemetry(self):
        # The cheapest golden cell, run plain and instrumented: the
        # digests (spec hash included) must match byte for byte.
        spec = min(
            golden_specs(),
            key=lambda s: s.warmup_ns + s.measure_ns,
        )
        plain, net_plain = run_spec_with_network(spec)
        inst, net_inst = run_spec_with_network(
            spec.with_updates(telemetry=TELEM)
        )
        d_plain = json.dumps(run_digest(plain, net_plain), sort_keys=True)
        d_inst = json.dumps(run_digest(inst, net_inst), sort_keys=True)
        assert d_plain == d_inst


# ----------------------------------------------------------------------
# Engine probes under alternative kernels
# ----------------------------------------------------------------------


class TestKernelTelemetry:
    """The engine probe hooks are part of the kernel contract: any
    registered kernel must keep the occupancy counters exact between
    events, so instrumentation neither degrades nor perturbs a run."""

    def test_engine_probes_sampled_under_batch(self):
        art = run_spec(
            quick_spec(telemetry=TELEM, kernel="batch")
        ).telemetry
        names = {s["name"] for s in art["series"]}
        assert {
            "engine.events_fired", "engine.wheel_occupancy",
            "engine.spill_occupancy", "engine.corpse_count",
        } <= names
        assert art["samples"] > 0

    def test_probe_series_identical_across_kernels(self):
        # Not just "samples exist": the batch kernel's drained stepping
        # must leave every engine counter in exactly the state the
        # reference wheel would show at each probe boundary.
        wheel = run_spec(quick_spec(telemetry=TELEM)).telemetry
        batch = run_spec(
            quick_spec(telemetry=TELEM, kernel="batch")
        ).telemetry
        assert artifact_minus_meta(wheel) == artifact_minus_meta(batch)

    def test_instrumented_batch_reproduces_wheel_golden(self):
        # Telemetry and kernel are both hash-neutral spec fields; an
        # instrumented batch run must still hit the recorded-wheel
        # digest byte for byte.
        spec = min(
            golden_specs(),
            key=lambda s: s.warmup_ns + s.measure_ns,
        )
        plain, net_plain = run_spec_with_network(spec)
        inst, net_inst = run_spec_with_network(
            spec.with_updates(telemetry=TELEM, kernel="batch")
        )
        d_plain = json.dumps(run_digest(plain, net_plain), sort_keys=True)
        d_inst = json.dumps(run_digest(inst, net_inst), sort_keys=True)
        assert d_plain == d_inst


# ----------------------------------------------------------------------
# Export: Perfetto + JSONL
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def stardust_artifact():
    return run_spec(quick_spec(telemetry=TELEM)).telemetry


class TestExport:
    def test_perfetto_schema(self, stardust_artifact):
        trace = perfetto_trace(stardust_artifact)
        assert set(trace) == {
            "traceEvents", "displayTimeUnit", "otherData",
        }
        events = trace["traceEvents"]
        phases = {e["ph"] for e in events}
        assert "C" in phases  # counter tracks
        assert "X" in phases  # flow spans
        assert "M" in phases  # process metadata
        for event in events:
            assert {"ph", "pid", "name"} <= set(event)
        json.dumps(trace)  # must be JSON-serializable as-is

    def test_perfetto_counter_values_match_series(self, stardust_artifact):
        trace = perfetto_trace(stardust_artifact)
        series = stardust_artifact["series"][0]
        counters = [
            e for e in trace["traceEvents"]
            if e["ph"] == "C" and e["name"] == series["name"]
        ]
        assert len(counters) == len(series["points"])
        t0, v0 = series["points"][0]
        assert counters[0]["ts"] == t0 / 1000.0
        assert list(counters[0]["args"].values()) == [v0]

    def test_write_perfetto(self, stardust_artifact, tmp_path):
        out = tmp_path / "trace.json"
        count = write_perfetto(out, stardust_artifact)
        data = json.loads(out.read_text())
        assert len(data["traceEvents"]) == count

    def test_jsonl_roundtrip(self, stardust_artifact, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(path, stardust_artifact)
        back = read_jsonl(path)
        canonical = json.loads(json.dumps(stardust_artifact))
        assert back == canonical

    def test_tracer_records_become_instants(self, stardust_artifact):
        records = [
            {"time_ns": 5, "category": "credit", "source": "fa0",
             "message": "grant", "data": {"bytes": 4096}},
        ]
        trace = perfetto_trace(stardust_artifact, trace_records=records)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["args"]["bytes"] == 4096

    def test_faulted_scenario_exports(self, tmp_path):
        spec = build_scenario(
            "permutation_link_failure", kind="stardust"
        ).with_updates(
            telemetry={"sample_interval_ns": 20_000}, **QUICK
        )
        assert spec.faults is not None
        result = run_spec(spec)
        out = tmp_path / "fault.json"
        assert write_perfetto(out, result.telemetry) > 0

    def test_cli_export_and_summary(self, stardust_artifact, tmp_path, capsys):
        from repro.telemetry.__main__ import main

        src = tmp_path / "a.jsonl"
        write_jsonl(src, stardust_artifact)
        out = tmp_path / "trace.json"
        assert main(["export", str(src), "-o", str(out)]) == 0
        assert json.loads(out.read_text())["traceEvents"]
        assert main(["summary", str(src)]) == 0
        captured = capsys.readouterr().out
        assert "series" in captured and "spans" in captured


# ----------------------------------------------------------------------
# Result store sidecar
# ----------------------------------------------------------------------


class TestStoreSidecar:
    def test_sidecar_written_and_reattached(self, tmp_path):
        store = ResultStore(tmp_path / "cells")
        spec = quick_spec(telemetry=TELEM)
        result = run_spec(spec)
        store.put(spec, result)
        # The cell itself stays telemetry-free (compact).
        cell = json.loads(store.path_for(spec).read_text())
        assert "telemetry" not in cell["result"]
        assert store.telemetry_path_for(spec).exists()
        cached = store.get(spec)
        assert cached is not None and cached.telemetry is not None
        assert cached.telemetry["series"]

    def test_plain_results_write_no_sidecar(self, tmp_path):
        store = ResultStore(tmp_path / "cells")
        spec = quick_spec()
        store.put(spec, run_spec(spec))
        assert not store.telemetry_path_for(spec).exists()

    def test_clear_removes_sidecars(self, tmp_path):
        store = ResultStore(tmp_path / "cells")
        spec = quick_spec(telemetry=TELEM)
        store.put(spec, run_spec(spec))
        store.clear()
        assert not store.telemetry_path_for(spec).exists()


# ----------------------------------------------------------------------
# Live sweep progress
# ----------------------------------------------------------------------


class TestLiveProgress:
    def test_run_matrix_live_reports_each_cell(self):
        specs = [quick_spec(), quick_spec(seed=9)]
        lines = []
        results = run_matrix(specs, shards=1, progress=lines.append,
                             live=True)
        assert len(results) == 2
        progress = [ln for ln in lines if ln.startswith("[")]
        assert len(progress) == 2
        assert progress[0].startswith("[1/2]")
        assert progress[1].startswith("[2/2]")
        assert "events/s" in progress[0]
        assert "eta" in progress[0]

    def test_run_matrix_silent_by_default(self):
        lines = []
        run_matrix([quick_spec()], shards=1, progress=lines.append)
        assert not any(ln.startswith("[1/") for ln in lines)


# ----------------------------------------------------------------------
# Overhead guard
# ----------------------------------------------------------------------


@pytest.mark.slow
class TestOverheadWhenDisabled:
    def test_disabled_probe_overhead_is_small(self):
        """The probe hook costs one int compare per event when unarmed.

        Wall-clock bound is generous (CI machines are noisy); the hard
        guarantee — identical event streams — is asserted exactly.
        """
        import time as _time

        def drive() -> tuple:
            sim = Simulator()
            budget = [200_000]

            def tick():
                budget[0] -= 1
                if budget[0] > 0:
                    sim.schedule(7, tick)

            for i in range(64):
                sim.schedule(i + 1, tick)
            start = _time.perf_counter()
            sim.run()
            return sim.events_fired, _time.perf_counter() - start

        # Warmup, then interleave measurements to cancel drift.
        drive()
        base = min(drive()[1] for _ in range(3))
        events, _ = drive()
        probed = min(drive()[1] for _ in range(3))
        assert probed <= base * 1.25  # generous: spec target is <2%
        assert events == drive()[0]
