"""Integration tests: packets through whole Stardust fabrics."""


from repro.core.config import StardustConfig
from repro.core.network import OneTierSpec
from repro.net.addressing import PortAddress
from repro.sim.units import MICROSECOND, MILLISECOND

from tests.conftest import build_network


class TestOneTier:
    def test_single_packet_delivery(self, small_one_tier):
        net, hosts = small_one_tier
        src = hosts[PortAddress(0, 0)]
        dst = PortAddress(2, 1)
        sent = src.send_to(dst, 1000)
        net.run(200 * MICROSECOND)
        received = hosts[dst].received
        assert len(received) == 1
        assert received[0][1].pkt_id == sent.pkt_id

    def test_many_packets_arrive_exactly_once_in_order(self, small_one_tier):
        net, hosts = small_one_tier
        src = hosts[PortAddress(0, 0)]
        dst = PortAddress(3, 0)
        sent = [src.send_to(dst, 500 + i) for i in range(50)]
        net.run(2 * MILLISECOND)
        got = [p.pkt_id for _, p in hosts[dst].received]
        assert got == [p.pkt_id for p in sent]

    def test_fabric_is_lossless(self, small_one_tier):
        net, hosts = small_one_tier
        for (addr, host) in hosts.items():
            for other in hosts:
                if other != addr:
                    host.send_to(other, 1200)
        net.run(2 * MILLISECOND)
        assert net.fabric_cell_drops() == 0
        total = sum(len(h.received) for h in hosts.values())
        assert total == len(hosts) * (len(hosts) - 1)

    def test_local_traffic_bypasses_fabric(self, small_one_tier):
        net, hosts = small_one_tier
        src = hosts[PortAddress(1, 0)]
        dst = PortAddress(1, 1)  # same Fabric Adapter
        src.send_to(dst, 800)
        net.run(100 * MICROSECOND)
        assert len(hosts[dst].received) == 1
        assert net.fas[1].local_switched == 1
        assert net.fas[1].cells_sent == 0

    def test_cells_spread_across_all_uplinks(self, small_one_tier):
        net, hosts = small_one_tier
        src_addr = PortAddress(0, 0)
        src = hosts[src_addr]
        for _ in range(40):
            src.send_to(PortAddress(2, 0), 1500)
        net.run(2 * MILLISECOND)
        fa = net.fas[0]
        counts = [up.tx_frames for up in fa.uplinks]
        assert min(counts) > 0
        # Near-perfect balance: spread within one cell of each other
        # is ideal; allow small slack for burst boundaries.
        assert max(counts) - min(counts) <= 3

    def test_voq_created_per_destination_port(self, small_one_tier):
        net, hosts = small_one_tier
        src = hosts[PortAddress(0, 0)]
        src.send_to(PortAddress(1, 0), 100)
        src.send_to(PortAddress(1, 1), 100)
        src.send_to(PortAddress(2, 0), 100)
        net.run(10 * MICROSECOND)  # let the packets reach the FA
        assert net.fas[0].voq_count == 3


class TestTwoTier:
    def test_cross_pod_delivery(self, small_two_tier):
        net, hosts = small_two_tier
        src = hosts[PortAddress(0, 0)]  # pod 0
        dst = PortAddress(7, 1)  # pod 1
        src.send_to(dst, 4000)
        net.run(500 * MICROSECOND)
        assert len(hosts[dst].received) == 1

    def test_same_pod_stays_in_pod(self, small_two_tier):
        net, hosts = small_two_tier
        src = hosts[PortAddress(0, 0)]
        dst = PortAddress(1, 0)  # same pod (fas 0-3 are pod 0)
        for _ in range(10):
            src.send_to(dst, 1000)
        net.run(500 * MICROSECOND)
        assert len(hosts[dst].received) == 10
        # Spines only carry cross-pod traffic: tier-2 FEs saw nothing.
        spine_cells = sum(
            fe.cells_forwarded for fe in net.fes if fe.tier == 2
        )
        assert spine_cells == 0

    def test_all_to_all_lossless(self, small_two_tier):
        net, hosts = small_two_tier
        for addr, host in hosts.items():
            for other in hosts:
                if other.fa != addr.fa:
                    host.send_to(other, 900)
        net.run(3 * MILLISECOND)
        assert net.fabric_cell_drops() == 0
        expected = sum(
            1
            for a in hosts
            for b in hosts
            if a.fa != b.fa
        )
        assert sum(len(h.received) for h in hosts.values()) == expected

    def test_cell_latency_recorded(self, small_two_tier):
        net, hosts = small_two_tier
        hosts[PortAddress(0, 0)].send_to(PortAddress(7, 0), 2000)
        net.run(500 * MICROSECOND)
        lat = net.cell_latency()
        assert lat.count > 0
        # 4 fabric hops with 100ns propagation: latency must exceed
        # the bare propagation and stay well under a millisecond when idle.
        assert lat.minimum() > 400
        assert lat.maximum() < 100 * MICROSECOND


class TestDynamicReachability:
    def test_dynamic_mode_converges_then_delivers(self):
        spec = OneTierSpec(num_fas=3, uplinks_per_fa=3, hosts_per_fa=1)
        net, hosts = build_network(spec, reachability="dynamic")
        net.run(300 * MICROSECOND)  # let reachability converge
        src = hosts[PortAddress(0, 0)]
        dst = PortAddress(2, 0)
        src.send_to(dst, 1500)
        net.run(500 * MICROSECOND)
        assert len(hosts[dst].received) == 1

    def test_link_failure_heals_and_traffic_flows(self):
        spec = OneTierSpec(num_fas=3, uplinks_per_fa=3, hosts_per_fa=1)
        net, hosts = build_network(spec, reachability="dynamic")
        net.run(300 * MICROSECOND)
        src = hosts[PortAddress(0, 0)]
        dst = PortAddress(2, 0)
        # Kill one of the source FA's uplinks (both directions).
        fa = net.fas[0]
        dead = fa.uplinks[0]
        dead.fail()
        # Also kill the reverse direction (FE -> FA).
        fe0 = dead.dst
        for port in fe0.fabric_ports:
            if port.out.dst is fa:
                port.out.fail()
        # Wait for the monitors to notice.
        net.run(500 * MICROSECOND)
        for _ in range(20):
            src.send_to(dst, 1000)
        net.run(2 * MILLISECOND)
        assert len(hosts[dst].received) == 20
        # Failed uplink carried no data cells after the failure.
        assert dead.tx_frames == 0 or not dead.up

    def test_failed_uplink_excluded_from_spray(self):
        spec = OneTierSpec(num_fas=3, uplinks_per_fa=3, hosts_per_fa=1)
        net, hosts = build_network(spec, reachability="dynamic")
        net.run(300 * MICROSECOND)
        fa = net.fas[0]
        dead = fa.uplinks[1]
        dead.fail()
        fe = dead.dst
        for port in fe.fabric_ports:
            if port.out.dst is fa:
                port.out.fail()
        net.run(500 * MICROSECOND)
        eligible = fa.eligible_uplinks(2)
        assert dead not in eligible
        assert len(eligible) == 2


class TestConfigVariants:
    def test_unpacked_cells_need_more_cells(self):
        spec = OneTierSpec(num_fas=2, uplinks_per_fa=2, hosts_per_fa=1)
        results = {}
        for packing in (True, False):
            cfg = StardustConfig(packet_packing=packing)
            net, hosts = build_network(spec, config=cfg)
            src = hosts[PortAddress(0, 0)]
            for _ in range(20):
                src.send_to(PortAddress(1, 0), 250)  # just over one payload
            net.run(2 * MILLISECOND)
            assert len(hosts[PortAddress(1, 0)].received) == 20
            results[packing] = sum(fa.cells_sent for fa in net.fas)
        assert results[False] > results[True]

    def test_multiple_traffic_classes_deliver(self):
        spec = OneTierSpec(num_fas=2, uplinks_per_fa=2, hosts_per_fa=1)
        cfg = StardustConfig(traffic_classes=2)
        net, hosts = build_network(spec, config=cfg)
        src = hosts[PortAddress(0, 0)]
        src.send_to(PortAddress(1, 0), 700, priority=0)
        src.send_to(PortAddress(1, 0), 700, priority=1)
        net.run(1 * MILLISECOND)
        assert len(hosts[PortAddress(1, 0)].received) == 2
        assert net.fas[0].voq_count == 2  # one VOQ per class

    def test_jumbo_packets(self, small_one_tier):
        net, hosts = small_one_tier
        src = hosts[PortAddress(0, 0)]
        dst = PortAddress(1, 0)
        src.send_to(dst, 9000)
        net.run(1 * MILLISECOND)
        assert len(hosts[dst].received) == 1
