"""The repro.experiments subsystem: specs, registry, runner, store."""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    ResultStore,
    RunResult,
    ScenarioSpec,
    TopologySpec,
    UnknownScenarioError,
    build_scenario,
    get_scenario,
    resolve_kind,
    run_matrix,
    run_spec,
    scenario_names,
)
from repro.experiments.registry import scenario
from repro.experiments.summarize import Summary, aggregate
from repro.core.network import OneTierSpec, TwoTierSpec
from repro.sim.units import MICROSECOND

#: A deliberately tiny topology so runner tests stay fast.
TINY = TopologySpec(
    "one_tier", dict(num_fas=3, uplinks_per_fa=2, hosts_per_fa=1)
)


def tiny_permutation(kind: str, seed: int = 3) -> ScenarioSpec:
    return build_scenario(
        "permutation",
        kind=kind,
        seed=seed,
        topology=TINY,
        warmup_ns=100 * MICROSECOND,
        measure_ns=400 * MICROSECOND,
    )


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------


class TestScenarioSpec:
    @pytest.mark.parametrize("name", ["permutation", "incast",
                                      "many_to_many", "uniform_random",
                                      "mixed"])
    def test_round_trip_through_json(self, name):
        spec = build_scenario(name, kind="dctcp", seed=5)
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone.to_dict() == spec.to_dict()
        assert clone.content_hash() == spec.content_hash()

    def test_hash_changes_with_content(self):
        a = build_scenario("permutation", kind="stardust", seed=1)
        assert a.content_hash() != a.with_updates(seed=2).content_hash()
        assert (
            a.content_hash()
            != build_scenario("permutation", kind="dctcp", seed=1)
            .content_hash()
        )

    def test_hash_is_stable_across_instances(self):
        a = build_scenario("incast", kind="tcp", n_backends=4)
        b = build_scenario("incast", kind="tcp", n_backends=4)
        assert a is not b
        assert a.content_hash() == b.content_hash()

    def test_topology_spec_wraps_concrete_specs(self):
        two = TwoTierSpec(
            pods=2, fas_per_pod=3, fes_per_pod=3, spines=3, hosts_per_fa=2
        )
        wrapped = TopologySpec.of(two)
        assert wrapped.kind == "two_tier"
        assert wrapped.build() == two
        one = OneTierSpec(num_fas=4, uplinks_per_fa=4, hosts_per_fa=1)
        assert TopologySpec.of(one).build() == one

    def test_topology_addresses_cover_all_ports(self):
        addrs = TINY.addresses()
        assert len(addrs) == 3
        assert len(set(addrs)) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            TopologySpec("ring", {})
        with pytest.raises(ValueError):
            build_scenario("permutation", kind="carrier-pigeon")
        with pytest.raises(ValueError):
            ScenarioSpec(scenario="x", topology=TINY, fabric="token-ring")
        with pytest.raises(ValueError):
            ScenarioSpec(scenario="x", topology=TINY, workload={})

    def test_resolve_kind_presets(self):
        assert resolve_kind("stardust") == ("stardust", "tcp")
        assert resolve_kind("dctcp") == ("push", "dctcp")
        assert resolve_kind("ethernet") == ("push", "tcp")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_preseeded_scenarios_present(self):
        names = scenario_names()
        for expected in ("permutation", "incast", "many_to_many",
                         "uniform_random", "mixed"):
            assert expected in names

    def test_lookup_returns_entry_with_description(self):
        entry = get_scenario("permutation")
        assert entry.name == "permutation"
        assert entry.description

    def test_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(UnknownScenarioError) as err:
            get_scenario("does-not-exist")
        assert "does-not-exist" in str(err.value)
        assert "permutation" in str(err.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            scenario("permutation")(lambda **kw: None)

    def test_factory_parameters_flow_into_spec(self):
        spec = build_scenario(
            "incast", kind="tcp", n_backends=4, response_bytes=12_345
        )
        assert spec.workload["n_backends"] == 4
        assert spec.workload["response_bytes"] == 12_345
        assert spec.topology.params["num_fas"] == 5


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCli:
    def test_list_shows_scenarios_and_registered_fabrics(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "permutation_three_tier" in out
        assert "fabrics:" in out
        assert "stardust" in out
        assert "push" in out
        assert "ethernet" in out  # alias is surfaced too

    def test_bad_names_exit_with_one_line_error(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["show", "no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
        assert main(["show", "permutation", "--kind", "warp-drive"]) == 2
        assert "unknown kind" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------


class TestRunner:
    def test_unknown_workload_kind_rejected(self):
        spec = tiny_permutation("stardust")
        spec.workload = {"kind": "quantum-entanglement"}
        with pytest.raises(ValueError):
            run_spec(spec)

    def test_run_produces_sensible_result(self):
        result = run_spec(tiny_permutation("stardust"))
        assert result.scenario == "permutation"
        assert len(result.flow_rates_gbps) == 3
        assert all(r > 0 for r in result.flow_rates_gbps)
        assert result.delivered_bytes > 0
        assert result.spec_hash == tiny_permutation("stardust").content_hash()

    def test_result_round_trips_through_json(self):
        result = run_spec(tiny_permutation("stardust"))
        clone = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone == result

    def test_repeat_runs_are_deterministic(self):
        # "tcp" exercises the ECMP flow-id hash, the part most sensitive
        # to process history; hermetic runs must erase that history.
        first = run_spec(tiny_permutation("tcp"))
        second = run_spec(tiny_permutation("tcp"))
        assert first == second

    def test_inprocess_and_multiprocess_agree(self):
        specs = [tiny_permutation("tcp", seed=s) for s in (3, 4, 5, 6)]
        inline = run_matrix(specs, shards=1)
        sharded = run_matrix(specs, shards=4)
        assert inline == sharded
        # Different seeds give different permutations -> different runs.
        assert inline[0] != inline[1]

    def test_incast_backend_overflow_rejected(self):
        spec = build_scenario("incast", kind="tcp", n_backends=2)
        spec.workload["n_backends"] = 99
        with pytest.raises(ValueError):
            run_spec(spec)


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------


class TestStore:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path / "cells")
        spec = tiny_permutation("stardust")
        assert store.get(spec) is None
        assert store.misses == 1 and store.hits == 0

        result = run_spec(spec)
        path = store.put(spec, result)
        assert path.exists()
        assert store.has(spec)
        assert len(store) == 1

        cached = store.get(spec)
        assert cached == result
        assert store.hits == 1

    def test_different_specs_occupy_different_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        a = tiny_permutation("stardust", seed=1)
        b = tiny_permutation("stardust", seed=2)
        result = run_spec(a)
        store.put(a, result)
        assert store.has(a)
        assert not store.has(b)

    def test_corrupt_cell_counts_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_permutation("stardust")
        store.put(spec, run_spec(spec))
        store.path_for(spec).write_text("{not json")
        assert store.get(spec) is None

    def test_run_matrix_uses_the_cache(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [tiny_permutation("stardust", seed=s) for s in (3, 4)]
        first = run_matrix(specs, store=store)
        assert len(store) == 2
        assert store.hits == 0

        second = run_matrix(specs, store=store)
        assert second == first
        assert store.hits == 2

    def test_clear_empties_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_permutation("stardust")
        store.put(spec, run_spec(spec))
        assert store.clear() == 1
        assert len(store) == 0


# ----------------------------------------------------------------------
# Other workloads & summaries
# ----------------------------------------------------------------------


class TestWorkloads:
    def test_incast_collects_fcts(self):
        spec = build_scenario(
            "incast", kind="stardust", n_backends=3, response_bytes=20_000
        )
        result = run_spec(spec)
        assert result.metrics["completed"] == 3
        assert len(result.fcts_ns) == 3
        assert result.drops == 0  # lossless pull fabric

    def test_incast_dcqcn_installs_notification_points(self):
        # DCQCN only reacts to CNPs, which only a notification point
        # emits; the incast executor must install one per flow.
        from repro.experiments.builders import build_network
        from repro.transport.dcqcn import DcqcnNotificationPoint
        from repro.transport.host import make_hosts
        from repro.workloads.incast import run_incast

        spec = build_scenario(
            "incast", kind="dcqcn", n_backends=2, response_bytes=20_000
        )
        net = build_network(spec)
        addrs = spec.topology.addresses()
        hosts, tracker = make_hosts(net, addrs)
        run_incast(
            net, hosts, tracker, addrs[0], addrs[1:3],
            response_bytes=20_000,
            timeout_ns=5_000_000,
            receiver_factory=lambda host, flow: DcqcnNotificationPoint(
                host, flow.flow_id
            ),
        )
        frontend = hosts[addrs[0]]
        installed = [
            frontend._receivers[f.flow_id]
            for f in (s.flow for s in tracker.all())
        ]
        assert len(installed) == 2
        assert all(
            isinstance(r, DcqcnNotificationPoint) for r in installed
        )

    def test_incast_dcqcn_runs_end_to_end(self):
        spec = build_scenario(
            "incast", kind="dcqcn", n_backends=2, response_bytes=20_000
        )
        result = run_spec(spec)
        assert result.metrics["completed"] == 2

    def test_many_to_many_completes_flows(self):
        spec = build_scenario(
            "many_to_many",
            kind="stardust",
            num_fas=3,
            hosts_per_fa=1,
            uplinks_per_fa=2,
            flow_bytes=20_000,
            timeout_ns=50_000_000,
        )
        result = run_spec(spec)
        assert result.metrics["offered_flows"] == 6
        assert result.metrics["completed"] == 6

    def test_uniform_random_delivers_most_packets(self):
        spec = build_scenario(
            "uniform_random",
            kind="stardust",
            utilization=0.3,
            topology=TINY,
            warmup_ns=50 * MICROSECOND,
            measure_ns=200 * MICROSECOND,
        )
        result = run_spec(spec)
        assert result.metrics["packets_sent"] > 0
        assert result.metrics["delivery_ratio"] > 0.8

    def test_mixed_runs_flows_from_both_distributions(self):
        spec = build_scenario(
            "mixed",
            kind="stardust",
            seed=2,
            load=0.5,
            topology=TINY,
            warmup_ns=0,
            measure_ns=2_000_000,
            max_flows_per_host=5,
        )
        result = run_spec(spec)
        assert result.metrics["offered_flows"] > 0
        assert result.delivered_bytes > 0


class TestSummarize:
    def test_summary_percentiles(self):
        summary = Summary.of([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == 3
        assert summary.p50 == 3
        assert summary.minimum == 1 and summary.maximum == 5
        assert Summary.of([]) is None

    def test_aggregate_pools_across_seeds(self):
        results = [
            run_spec(tiny_permutation("stardust", seed=s)) for s in (3, 4)
        ]
        rows = aggregate(results)
        assert len(rows) == 1
        row = rows[0]
        assert row.seeds == [3, 4]
        assert row.rates_gbps.count == 6  # 3 flows x 2 seeds
        assert row.label == "stardust"
