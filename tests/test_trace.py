"""Unit tests for the tracing facility."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


def make():
    sim = Simulator()
    return sim, Tracer(sim, capacity=100)


class TestTracer:
    def test_disabled_categories_record_nothing(self):
        sim, tracer = make()
        tracer.record("credits", "fa0", "grant")
        assert tracer.count() == 0

    def test_enabled_category_records(self):
        sim, tracer = make()
        tracer.enable("credits")
        tracer.record("credits", "fa0", "grant 4KB")
        tracer.record("spray", "fa0", "not recorded")
        assert tracer.count() == 1
        assert tracer.records()[0].message == "grant 4KB"

    def test_star_enables_everything(self):
        sim, tracer = make()
        tracer.enable("*")
        tracer.record("anything", "x", "m")
        assert tracer.count() == 1
        tracer.disable("*")
        tracer.record("anything", "x", "m")
        assert tracer.count() == 1

    def test_timestamps_come_from_sim(self):
        sim, tracer = make()
        tracer.enable("t")
        sim.schedule(42, lambda: tracer.record("t", "a", "later"))
        sim.run()
        assert tracer.records()[0].time_ns == 42

    def test_filtering(self):
        sim, tracer = make()
        tracer.enable("a", "b")
        tracer.record("a", "x", "1")
        tracer.record("b", "x", "2")
        tracer.record("a", "y", "3")
        assert tracer.count("a") == 2
        assert len(tracer.records(source="x")) == 2
        assert len(tracer.records(category="a", source="y")) == 1

    def test_since_filter(self):
        sim, tracer = make()
        tracer.enable("t")
        tracer.record("t", "x", "early")
        sim.schedule(100, lambda: tracer.record("t", "x", "late"))
        sim.run()
        assert len(tracer.records(since_ns=50)) == 1

    def test_ring_buffer_drops_oldest(self):
        sim, tracer = make()
        tracer.enable("t")
        for i in range(150):
            tracer.record("t", "x", str(i))
        assert tracer.count() == 100
        assert tracer.dropped == 50
        assert tracer.records()[0].message == "50"

    def test_wants_gate(self):
        sim, tracer = make()
        assert not tracer.wants("x")
        tracer.enable("x")
        assert tracer.wants("x")

    def test_clear(self):
        sim, tracer = make()
        tracer.enable("t")
        tracer.record("t", "x", "m")
        tracer.clear()
        assert tracer.count() == 0

    def test_dump_format(self):
        sim, tracer = make()
        tracer.enable("t")
        tracer.record("t", "fa0", "hello")
        assert "fa0: hello" in tracer.dump()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(Simulator(), capacity=0)


class TestTracerExport:
    def test_to_dict_omits_empty_data(self):
        sim, tracer = make()
        tracer.enable("t")
        tracer.record("t", "fa0", "plain")
        tracer.record("t", "fa1", "rich", data={"bytes": 9})
        plain, rich = [r.to_dict() for r in tracer.records()]
        assert "data" not in plain
        assert plain == {
            "time_ns": 0, "category": "t", "source": "fa0",
            "message": "plain",
        }
        assert rich["data"] == {"bytes": 9}

    def test_iteration_yields_records_in_order(self):
        sim, tracer = make()
        tracer.enable("t")
        for i in range(3):
            tracer.record("t", "x", str(i))
        assert [r.message for r in tracer] == ["0", "1", "2"]

    def test_export_jsonl_roundtrip(self, tmp_path):
        import json

        sim, tracer = make()
        tracer.enable("t")
        tracer.record("t", "fa0", "hello", data={"k": 1})
        tracer.record("t", "fa1", "world")
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        lines = [
            json.loads(ln) for ln in path.read_text().splitlines() if ln
        ]
        assert lines == [r.to_dict() for r in tracer.records()]

    def test_dropped_counter_increments_on_eviction(self):
        # Regression guard: eviction must keep counting once the ring
        # wraps, so "how much did I lose" stays answerable.
        sim, tracer = make()
        tracer.enable("t")
        for i in range(250):
            tracer.record("t", "x", str(i))
        assert tracer.dropped == 150
        tracer.record("t", "x", "one more")
        assert tracer.dropped == 151
