"""repro.lint: the analyzer itself, rule by rule.

Each rule gets a positive fixture (flagged), a negative fixture
(clean), and most get a suppressed variant; the baseline machinery has
its own diff cases, and a meta-test holds the *committed* baseline to
its contract: empty, or every entry still matching a live finding.

Fixtures are written under a ``repro/<package>/`` directory structure
inside tmp_path so zone classification sees the paths it would see in
the real tree.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    RULES,
    analyze_paths,
    diff_against_baseline,
    load_baseline,
    rule,
    write_baseline,
    zone_for_path,
)
from repro.lint.__main__ import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_module(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def findings_for(tmp_path: Path, rel: str, source: str):
    path = write_module(tmp_path, rel, source)
    report = analyze_paths([path])
    return [f for f in report.findings]


def rules_hit(tmp_path, rel, source):
    return {f.rule for f in findings_for(tmp_path, rel, source)}


# ----------------------------------------------------------------------
# Zone map
# ----------------------------------------------------------------------
class TestZones:
    def test_sim_is_deterministic(self):
        assert zone_for_path("src/repro/sim/engine.py") == "deterministic"

    def test_harness_packages_are_relaxed(self):
        assert zone_for_path("src/repro/perf/bench.py") == "relaxed"
        assert zone_for_path("src/repro/telemetry/collector.py") == "relaxed"
        assert zone_for_path("src/repro/experiments/runner.py") == "relaxed"

    def test_unknown_repro_package_fails_closed(self):
        assert zone_for_path("src/repro/newkernel/batch.py") == "deterministic"

    def test_outside_repro_is_relaxed(self):
        assert zone_for_path("tests/test_lint.py") == "relaxed"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_shipped_rules_present(self):
        expected = {
            "DET001", "DET002", "DET003", "DET004", "DET005", "DET006",
            "HOT001", "HOT002", "API001",
        }
        assert expected <= set(RULES)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            rule("DET001", "again")(lambda ctx: iter(()))


# ----------------------------------------------------------------------
# DET001: unseeded randomness
# ----------------------------------------------------------------------
class TestDet001:
    def test_module_level_random_flagged(self, tmp_path):
        src = "import random\nx = random.random()\n"
        assert "DET001" in rules_hit(tmp_path, "repro/sim/bad.py", src)

    def test_unseeded_random_ctor_flagged(self, tmp_path):
        src = "import random\nrng = random.Random()\n"
        assert "DET001" in rules_hit(tmp_path, "repro/sim/bad.py", src)

    def test_numpy_global_flagged_even_in_relaxed_zone(self, tmp_path):
        src = "import numpy as np\nx = np.random.shuffle([1])\n"
        assert "DET001" in rules_hit(tmp_path, "repro/perf/bad.py", src)

    def test_seeded_random_ok(self, tmp_path):
        src = "import random\nrng = random.Random(7)\ny = rng.random()\n"
        assert "DET001" not in rules_hit(tmp_path, "repro/sim/ok.py", src)

    def test_randomness_module_exempt(self, tmp_path):
        src = "import random\nx = random.random()\n"
        hits = rules_hit(tmp_path, "repro/sim/randomness.py", src)
        assert "DET001" not in hits


# ----------------------------------------------------------------------
# DET002: wall clock
# ----------------------------------------------------------------------
class TestDet002:
    def test_time_time_flagged_in_det_zone(self, tmp_path):
        src = "import time\nt = time.time()\n"
        assert "DET002" in rules_hit(tmp_path, "repro/core/bad.py", src)

    def test_from_import_alias_resolved(self, tmp_path):
        src = "from time import perf_counter as pc\nt = pc()\n"
        assert "DET002" in rules_hit(tmp_path, "repro/core/bad.py", src)

    def test_datetime_now_flagged(self, tmp_path):
        src = "from datetime import datetime\nt = datetime.now()\n"
        assert "DET002" in rules_hit(tmp_path, "repro/transport/bad.py", src)

    def test_relaxed_zone_may_read_clock(self, tmp_path):
        src = "import time\nt = time.perf_counter()\n"
        assert "DET002" not in rules_hit(tmp_path, "repro/perf/ok.py", src)


# ----------------------------------------------------------------------
# DET003: set iteration feeding the scheduler
# ----------------------------------------------------------------------
class TestDet003:
    def test_set_iteration_in_scheduling_fn_flagged(self, tmp_path):
        src = (
            "def start(sim, flows):\n"
            "    for f in set(flows):\n"
            "        sim.schedule_at(f.t, f.go)\n"
        )
        assert "DET003" in rules_hit(tmp_path, "repro/workloads/bad.py", src)

    def test_dict_keys_iteration_flagged(self, tmp_path):
        src = (
            "def start(sim, flows):\n"
            "    for k in flows.keys():\n"
            "        sim.call_later(1, k)\n"
        )
        assert "DET003" in rules_hit(tmp_path, "repro/workloads/bad.py", src)

    def test_list_iteration_ok(self, tmp_path):
        src = (
            "def start(sim, flows):\n"
            "    for f in sorted(flows):\n"
            "        sim.schedule_at(f.t, f.go)\n"
        )
        assert "DET003" not in rules_hit(tmp_path, "repro/workloads/ok.py", src)

    def test_set_iteration_without_scheduling_ok(self, tmp_path):
        src = "def count(xs):\n    n = 0\n    for x in set(xs):\n        n += 1\n    return n\n"
        assert "DET003" not in rules_hit(tmp_path, "repro/core/ok.py", src)


# ----------------------------------------------------------------------
# DET004: id()/hash() ordering
# ----------------------------------------------------------------------
class TestDet004:
    def test_id_as_dict_key_flagged(self, tmp_path):
        src = "def track(d, link):\n    d[id(link)] = link\n"
        assert "DET004" in rules_hit(tmp_path, "repro/core/bad.py", src)

    def test_hash_modulo_flagged(self, tmp_path):
        src = "def pick(links, dst):\n    return links[hash(dst) % len(links)]\n"
        assert "DET004" in rules_hit(tmp_path, "repro/core/bad.py", src)

    def test_plain_hash_call_ok(self, tmp_path):
        src = "def h(x):\n    return hash(x)\n"
        assert "DET004" not in rules_hit(tmp_path, "repro/core/ok.py", src)

    def test_suppression_with_reason_honored(self, tmp_path):
        src = (
            "def pick(links, dst):\n"
            "    return links[hash(dst) % len(links)]"
            "  # repro-lint: allow=DET004 -- int hashes are seed-stable\n"
        )
        hits = rules_hit(tmp_path, "repro/core/ok.py", src)
        assert "DET004" not in hits
        assert "LINT000" not in hits
        assert "LINT001" not in hits


# ----------------------------------------------------------------------
# DET005: float math on *_ns
# ----------------------------------------------------------------------
class TestDet005:
    def test_true_division_into_ns_flagged(self, tmp_path):
        src = "def gap(nbytes, bps):\n    gap_ns = nbytes * 8e9 / bps\n    return gap_ns\n"
        assert "DET005" in rules_hit(tmp_path, "repro/core/bad.py", src)

    def test_int_wrapped_float_math_flagged(self, tmp_path):
        src = "def slow(gap_ns, factor):\n    gap_ns = int(gap_ns * factor)\n    return gap_ns\n"
        assert "DET005" in rules_hit(tmp_path, "repro/core/bad.py", src)

    def test_float_equality_on_ns_flagged(self, tmp_path):
        src = "def due(now_ns):\n    return now_ns == 1.5\n"
        assert "DET005" in rules_hit(tmp_path, "repro/core/bad.py", src)

    def test_integer_ns_math_ok(self, tmp_path):
        src = "def gap(nbytes, bps):\n    gap_ns = nbytes * 8 * 10**9 // bps\n    return gap_ns\n"
        assert "DET005" not in rules_hit(tmp_path, "repro/core/ok.py", src)


# ----------------------------------------------------------------------
# DET006: OS entropy
# ----------------------------------------------------------------------
class TestDet006:
    def test_uuid4_flagged(self, tmp_path):
        src = "import uuid\nrun_id = uuid.uuid4()\n"
        assert "DET006" in rules_hit(tmp_path, "repro/experiments/bad.py", src)

    def test_os_urandom_flagged(self, tmp_path):
        src = "import os\nseed = os.urandom(8)\n"
        assert "DET006" in rules_hit(tmp_path, "repro/sim/bad.py", src)


# ----------------------------------------------------------------------
# HOT001: __slots__ in the hot core
# ----------------------------------------------------------------------
class TestHot001:
    def test_slotless_class_in_sim_flagged(self, tmp_path):
        src = "class Thing:\n    def __init__(self):\n        self.x = 1\n"
        assert "HOT001" in rules_hit(tmp_path, "repro/sim/bad.py", src)

    def test_dataclass_without_slots_flagged(self, tmp_path):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\nclass Rec:\n    x: int = 0\n"
        )
        assert "HOT001" in rules_hit(tmp_path, "repro/core/bad.py", src)

    def test_slotted_class_ok(self, tmp_path):
        src = "class Thing:\n    __slots__ = ('x',)\n"
        assert "HOT001" not in rules_hit(tmp_path, "repro/sim/ok.py", src)

    def test_slots_dataclass_ok(self, tmp_path):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(slots=True)\nclass Rec:\n    x: int = 0\n"
        )
        assert "HOT001" not in rules_hit(tmp_path, "repro/core/ok.py", src)

    def test_exceptions_and_enums_exempt(self, tmp_path):
        src = (
            "from enum import Enum\n"
            "class Kind(Enum):\n    A = 1\n"
            "class BadThing(Exception):\n    pass\n"
        )
        assert "HOT001" not in rules_hit(tmp_path, "repro/sim/ok.py", src)

    def test_outside_hot_core_not_checked(self, tmp_path):
        src = "class Loose:\n    def __init__(self):\n        self.x = 1\n"
        assert "HOT001" not in rules_hit(tmp_path, "repro/fabrics/ok.py", src)


# ----------------------------------------------------------------------
# HOT002: closures in hot methods
# ----------------------------------------------------------------------
class TestHot002:
    def test_lambda_in_hot_method_flagged(self, tmp_path):
        src = (
            "class Link:\n"
            "    __slots__ = ()\n"
            "    def send(self, frame):\n"
            "        cb = lambda: frame\n"
            "        return cb\n"
        )
        assert "HOT002" in rules_hit(tmp_path, "repro/sim/link.py", src)

    def test_lambda_in_cold_method_ok(self, tmp_path):
        src = (
            "class Link:\n"
            "    __slots__ = ()\n"
            "    def configure(self):\n"
            "        return lambda: 1\n"
        )
        assert "HOT002" not in rules_hit(tmp_path, "repro/sim/link.py", src)

    def test_repo_hot_methods_are_closure_free(self):
        report = analyze_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        assert [f for f in report.findings if f.rule == "HOT002"] == []


# ----------------------------------------------------------------------
# API001: heapq/bisect containment
# ----------------------------------------------------------------------
class TestApi001:
    def test_heapq_outside_engine_flagged(self, tmp_path):
        src = "import heapq\n"
        assert "API001" in rules_hit(tmp_path, "repro/core/bad.py", src)

    def test_engine_exempt(self, tmp_path):
        src = "import heapq\nheapq.heapify([])\n"
        assert "API001" not in rules_hit(tmp_path, "repro/sim/engine.py", src)

    def test_file_wide_suppression(self, tmp_path):
        src = (
            "# repro-lint: allow-file=API001 -- table lookup, not ordering\n"
            "import bisect\n"
            "i = bisect.bisect_left([1], 1)\n"
        )
        assert "API001" not in rules_hit(tmp_path, "repro/workloads/ok.py", src)


# ----------------------------------------------------------------------
# Suppression hygiene
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_reasonless_suppression_is_a_finding(self, tmp_path):
        src = "import heapq  # repro-lint: allow=API001\n"
        hits = rules_hit(tmp_path, "repro/core/bad.py", src)
        assert "LINT000" in hits

    def test_unused_suppression_is_a_finding(self, tmp_path):
        src = "x = 1  # repro-lint: allow=DET004 -- stale reason\n"
        hits = rules_hit(tmp_path, "repro/core/stale.py", src)
        assert "LINT001" in hits

    def test_docstring_mention_is_not_a_suppression(self, tmp_path):
        src = (
            '"""Docs: write # repro-lint: allow=DET004 -- why."""\n'
            "x = 1\n"
        )
        hits = rules_hit(tmp_path, "repro/core/docs.py", src)
        assert hits == set()


# ----------------------------------------------------------------------
# Baseline machinery
# ----------------------------------------------------------------------
class TestBaseline:
    def test_baselined_finding_not_new(self, tmp_path):
        path = write_module(
            tmp_path, "repro/core/old.py", "import heapq\n"
        )
        report = analyze_paths([path])
        assert len(report.findings) == 1
        baseline_path = tmp_path / "baseline.json"
        write_baseline(report, baseline_path)
        new, stale = diff_against_baseline(
            analyze_paths([path]), load_baseline(baseline_path)
        )
        assert new == [] and stale == []

    def test_fresh_finding_is_new_and_fixed_is_stale(self, tmp_path):
        path = write_module(
            tmp_path, "repro/core/old.py", "import heapq\n"
        )
        baseline_path = tmp_path / "baseline.json"
        write_baseline(analyze_paths([path]), baseline_path)
        # Fix the old finding, introduce a different one.
        path.write_text("import bisect\n", encoding="utf-8")
        new, stale = diff_against_baseline(
            analyze_paths([path]), load_baseline(baseline_path)
        )
        assert [f.rule for f in new] == ["API001"]
        assert len(stale) == 1

    def test_committed_baseline_is_empty_or_entries_live(self):
        """The repo baseline may only hold entries that still exist —
        it can shrink as debt is paid, never rot."""
        baseline_path = REPO_ROOT / "lint_baseline.json"
        baseline = load_baseline(baseline_path)
        if not baseline:
            return  # empty: the intended steady state
        report = analyze_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        live = {f.fingerprint for f in report.findings}
        dead = [fp for fp in baseline if fp not in live]
        assert dead == [], f"stale baseline entries: {dead}"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_nonzero_on_each_rule_fixture(self, tmp_path, monkeypatch):
        fixtures = {
            "DET001": ("repro/sim/f1.py", "import random\nx = random.random()\n"),
            "DET002": ("repro/core/f2.py", "import time\nt = time.time()\n"),
            "DET003": (
                "repro/workloads/f3.py",
                "def go(sim, xs):\n    for x in set(xs):\n        sim.call_later(1, x)\n",
            ),
            "DET004": ("repro/core/f4.py", "def f(d, k):\n    d[id(k)] = k\n"),
            "DET005": ("repro/core/f5.py", "def f(b):\n    t_ns = b / 2\n    return t_ns\n"),
            "DET006": ("repro/sim/f6.py", "import uuid\nx = uuid.uuid4()\n"),
            "HOT001": ("repro/sim/f7.py", "class C:\n    pass\n"),
            "HOT002": (
                "repro/sim/link.py",
                "class Link:\n    __slots__ = ()\n"
                "    def send(self):\n        return lambda: 0\n",
            ),
            "API001": ("repro/core/f9.py", "import heapq\n"),
        }
        monkeypatch.chdir(tmp_path)
        for rule_id, (rel, src) in fixtures.items():
            path = write_module(tmp_path, rel, src)
            code = lint_main([str(path), "--no-baseline"])
            assert code == 1, f"{rule_id} fixture should fail the gate"
            path.unlink()

    def test_exit_zero_on_clean_file(self, tmp_path, monkeypatch):
        path = write_module(
            tmp_path, "repro/sim/clean.py", "class C:\n    __slots__ = ()\n"
        )
        monkeypatch.chdir(tmp_path)
        assert lint_main([str(path), "--no-baseline"]) == 0

    def test_json_format_and_output_artifact(self, tmp_path, monkeypatch):
        write_module(tmp_path, "repro/core/f.py", "import heapq\n")
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "report.json"
        code = lint_main(
            ["repro", "--no-baseline", "--format=json", "--output", str(out)]
        )
        assert code == 1
        artifact = json.loads(out.read_text())
        assert artifact["summary"] == {"API001": 1}
        assert artifact["findings"][0]["rule"] == "API001"

    def test_repo_tree_is_clean_subprocess(self):
        """The acceptance gate itself: python -m repro.lint exits 0."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out and "API001" in out
