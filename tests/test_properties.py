"""Property-based tests (hypothesis) on core data structures.

Invariants checked:
* packing conserves bytes, respects cell geometry, orders fragments;
* pack -> shuffle -> reassemble is the identity on packet streams;
* spray arbitration is balanced within one round for any link set;
* the FIFO queue never exceeds capacity and conserves items;
* VOQ credit accounting conserves bytes.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cell import VoqId
from repro.core.packing import cells_for_bytes, pack_burst
from repro.core.reassembly import ReassemblyEngine
from repro.core.spray import SprayArbiter
from repro.core.voq import SharedBufferPool, Voq
from repro.net.addressing import PortAddress
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.queue import FifoQueue

DST = PortAddress(fa=5, port=0)
SRC = PortAddress(fa=0, port=0)
VOQ = VoqId(dst=DST)

packet_sizes = st.lists(
    st.integers(min_value=1, max_value=9000), min_size=1, max_size=30
)
payloads = st.integers(min_value=8, max_value=512)


def mk_packets(sizes):
    return [Packet(size_bytes=s, src=SRC, dst=DST) for s in sizes]


def pack(packets, payload, packing=True):
    return pack_burst(
        packets,
        payload_bytes=payload,
        header_bytes=16,
        dst_fa=DST.fa,
        src_fa=SRC.fa,
        voq=VOQ,
        first_seq=0,
        packing=packing,
    )


class TestPackingProperties:
    @given(sizes=packet_sizes, payload=payloads)
    def test_bytes_conserved(self, sizes, payload):
        cells = pack(mk_packets(sizes), payload)
        assert sum(c.payload_bytes for c in cells) == sum(sizes)

    @given(sizes=packet_sizes, payload=payloads)
    def test_no_cell_overflows(self, sizes, payload):
        for cell in pack(mk_packets(sizes), payload):
            assert 0 < cell.payload_bytes <= payload

    @given(sizes=packet_sizes, payload=payloads)
    def test_packed_cell_count_is_optimal(self, sizes, payload):
        cells = pack(mk_packets(sizes), payload)
        assert len(cells) == cells_for_bytes(sum(sizes), payload)

    @given(sizes=packet_sizes, payload=payloads)
    def test_exactly_one_eop_per_packet(self, sizes, payload):
        cells = pack(mk_packets(sizes), payload)
        eops = [
            f.packet.pkt_id
            for c in cells
            for f in c.fragments
            if f.end_of_packet
        ]
        assert len(eops) == len(sizes)
        assert len(set(eops)) == len(sizes)

    @given(sizes=packet_sizes, payload=payloads)
    def test_fragments_preserve_packet_order(self, sizes, payload):
        packets = mk_packets(sizes)
        cells = pack(packets, payload)
        seen = []
        for cell in cells:
            for frag in cell.fragments:
                if not seen or seen[-1] != frag.packet.pkt_id:
                    seen.append(frag.packet.pkt_id)
        assert seen == [p.pkt_id for p in packets]

    @given(sizes=packet_sizes, payload=payloads, packing=st.booleans())
    def test_seq_numbers_dense(self, sizes, payload, packing):
        cells = pack(mk_packets(sizes), payload, packing)
        assert [c.seq for c in cells] == list(range(len(cells)))


class TestReassemblyRoundTrip:
    @given(
        sizes=packet_sizes,
        payload=payloads,
        packing=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60)
    def test_pack_shuffle_reassemble_is_identity(
        self, sizes, payload, packing, seed
    ):
        packets = mk_packets(sizes)
        cells = pack(packets, payload, packing)
        rng = random.Random(seed)
        shuffled = list(cells)
        rng.shuffle(shuffled)

        sim = Simulator()
        delivered = []
        engine = ReassemblyEngine(
            sim, lambda p, v: delivered.append(p), timeout_ns=10**9
        )
        for cell in shuffled:
            engine.receive(cell)
        assert [p.pkt_id for p in delivered] == [p.pkt_id for p in packets]
        assert engine.packets_discarded == 0


class TestSprayProperties:
    @given(
        nlinks=st.integers(min_value=1, max_value=32),
        rounds=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_each_round_hits_every_link_once(self, nlinks, rounds, seed):
        arb = SprayArbiter(random.Random(seed), reshuffle_every=10**9)
        links = list(range(nlinks))
        counts = {l: 0 for l in links}
        for _ in range(rounds * nlinks):
            counts[arb.pick("d", links)] += 1
        assert set(counts.values()) == {rounds}

    @given(
        nlinks=st.integers(min_value=2, max_value=16),
        ncells=st.integers(min_value=1, max_value=500),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_imbalance_never_exceeds_one(self, nlinks, ncells, seed):
        arb = SprayArbiter(random.Random(seed))
        links = list(range(nlinks))
        counts = {l: 0 for l in links}
        for _ in range(ncells):
            counts[arb.pick("d", links)] += 1
        assert max(counts.values()) - min(counts.values()) <= 1


class TestQueueProperties:
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("push"), st.integers(1, 2000)),
                st.tuples(st.just("pop"), st.just(0)),
            ),
            max_size=200,
        ),
        capacity=st.integers(min_value=100, max_value=10_000),
    )
    def test_capacity_and_conservation(self, ops, capacity):
        class Item:
            def __init__(self, size):
                self.size_bytes = size

        q = FifoQueue(capacity_bytes=capacity)
        pushed = popped = dropped = 0
        for op, size in ops:
            if op == "push":
                if q.push(Item(size)):
                    pushed += 1
                else:
                    dropped += 1
            elif q.frames:
                q.pop()
                popped += 1
            assert q.bytes <= capacity
        assert q.frames == pushed - popped
        assert q.stats.dropped_frames == dropped


class TestVoqProperties:
    @given(
        sizes=st.lists(st.integers(1, 5000), min_size=1, max_size=50),
        credits=st.lists(st.integers(1, 8192), min_size=1, max_size=50),
    )
    def test_credit_accounting_conserves_packets(self, sizes, credits):
        pool = SharedBufferPool(10**9)
        voq = Voq(VOQ, pool)
        packets = mk_packets(sizes)
        for p in packets:
            assert voq.push(p)
        out = []
        for credit in credits:
            out.extend(voq.grant(credit))
        # Whatever came out came out in order, without duplication.
        assert [p.pkt_id for p in out] == [
            p.pkt_id for p in packets[: len(out)]
        ]
        # Pool usage matches what is still queued.
        assert pool.used_bytes == sum(p.size_bytes for p in packets[len(out):])
        # A drained VOQ holds no surplus.
        if voq.empty:
            assert voq.credit_balance <= 0 or voq.credit_balance == 0
