"""Unit tests for the packet substrate: packets, addressing, flows."""

import pytest

from repro.net.addressing import PortAddress
from repro.net.flow import Flow, FlowTracker
from repro.net.packet import (
    ETHERNET_OVERHEAD_BYTES,
    MIN_ETHERNET_FRAME,
    Packet,
    wire_size,
)


ADDR_A = PortAddress(fa=0, port=0)
ADDR_B = PortAddress(fa=1, port=3)


class TestAddressing:
    def test_equality_and_hash(self):
        assert PortAddress(1, 2) == PortAddress(1, 2)
        assert len({PortAddress(1, 2), PortAddress(1, 2)}) == 1

    def test_ordering(self):
        assert PortAddress(0, 5) < PortAddress(1, 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PortAddress(-1, 0)
        with pytest.raises(ValueError):
            PortAddress(0, -1)

    def test_str(self):
        assert str(PortAddress(3, 7)) == "fa3:p7"


class TestPacket:
    def test_wire_size_adds_overhead(self):
        assert wire_size(1500) == 1500 + ETHERNET_OVERHEAD_BYTES

    def test_wire_size_pads_runt_frames(self):
        assert wire_size(20) == MIN_ETHERNET_FRAME + ETHERNET_OVERHEAD_BYTES

    def test_packet_wire_bytes(self):
        p = Packet(size_bytes=64, src=ADDR_A, dst=ADDR_B)
        assert p.wire_bytes == 84

    def test_unique_ids(self):
        a = Packet(size_bytes=64, src=ADDR_A, dst=ADDR_B)
        b = Packet(size_bytes=64, src=ADDR_A, dst=ADDR_B)
        assert a.pkt_id != b.pkt_id

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(size_bytes=0, src=ADDR_A, dst=ADDR_B)


class TestFlow:
    def test_finite_and_infinite_flows(self):
        f = Flow(src=ADDR_A, dst=ADDR_B, size_bytes=1000)
        g = Flow(src=ADDR_A, dst=ADDR_B)
        assert f.size_bytes == 1000
        assert g.size_bytes is None
        assert f.flow_id != g.flow_id

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Flow(src=ADDR_A, dst=ADDR_B, size_bytes=0)


class TestFlowTracker:
    def test_completion_detection(self):
        tracker = FlowTracker()
        flow = Flow(src=ADDR_A, dst=ADDR_B, size_bytes=100, start_ns=10)
        tracker.register(flow)
        tracker.record_delivery(flow.flow_id, 50, 60)
        assert tracker.get(flow.flow_id).completed_ns is None
        tracker.record_delivery(flow.flow_id, 90, 40)
        stats = tracker.get(flow.flow_id)
        assert stats.completed_ns == 90
        assert stats.fct_ns == 80

    def test_infinite_flow_never_completes(self):
        tracker = FlowTracker()
        flow = Flow(src=ADDR_A, dst=ADDR_B)
        tracker.register(flow)
        tracker.record_delivery(flow.flow_id, 100, 10**9)
        assert tracker.get(flow.flow_id).completed_ns is None
        assert tracker.completed() == []

    def test_goodput(self):
        tracker = FlowTracker()
        flow = Flow(src=ADDR_A, dst=ADDR_B, size_bytes=1250, start_ns=0)
        tracker.register(flow)
        tracker.record_delivery(flow.flow_id, 10_000, 1250)
        # 10000 bits over 10 us = 1 Gbps.
        assert tracker.get(flow.flow_id).goodput_bps() == pytest.approx(1e9)

    def test_double_register_rejected(self):
        tracker = FlowTracker()
        flow = Flow(src=ADDR_A, dst=ADDR_B)
        tracker.register(flow)
        with pytest.raises(ValueError):
            tracker.register(flow)

    def test_fcts_listing(self):
        tracker = FlowTracker()
        for size, end in [(10, 100), (20, 300)]:
            flow = Flow(src=ADDR_A, dst=ADDR_B, size_bytes=size, start_ns=0)
            tracker.register(flow)
            tracker.record_delivery(flow.flow_id, end, size)
        assert sorted(tracker.fcts_ns()) == [100, 300]
