"""Every script under examples/ must import and run.

Each example runs as a subprocess (the way users run them), scaled down
via CLI arguments where the script supports them, so examples cannot
silently rot as the library evolves.  New example files are picked up
automatically by the glob.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))

#: Scale-down arguments for the slower examples; everything else runs
#: with its defaults (they finish in about a second).
SCALED_ARGS = {
    "permutation_throughput.py": [
        "--hosts-per-fa", "2", "--warmup-ms", "0.5", "--window-ms", "1",
    ],
    "scalability_planner.py": ["20000"],
}


def test_examples_exist():
    assert EXAMPLES, "examples/ directory is empty?"


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda path: path.name
)
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    args = SCALED_ARGS.get(script.name, [])
    proc = subprocess.run(
        [sys.executable, str(script), *args],
        env=env,
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script.name} exited with {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"
