"""The large three-tier scenarios: registered, sharded, reproducible.

``permutation_three_tier_large`` and ``mixed_three_tier_large`` are the
cells-at-scale runs the calendar-queue engine unlocked (32 FAs / 128
hosts across two FE tiers and a global spine row).  These tests pin the
contract the experiment registry makes for them:

* they are registered and buildable like any other scenario family;
* the topology is non-blocking by construction (the §5.1 claim the
  scenario exists to exercise);
* they run under the *sharded* runner — separate worker processes —
  and still land exactly on the committed golden digests, which is the
  cross-process face of the determinism contract
  (``tests/test_golden_traces.py`` checks the in-process face).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import build_scenario, run_matrix, scenario_names
from repro.experiments.registry import THREE_TIER_LARGE_TOPOLOGY
from repro.perf.digest import values_hash
from repro.perf.golden import golden_name, golden_specs

GOLDEN_DIR = Path(__file__).parent / "golden"

LARGE_SCENARIOS = ("permutation_three_tier_large", "mixed_three_tier_large")


def test_large_scenarios_are_registered():
    names = scenario_names()
    for name in LARGE_SCENARIOS:
        assert name in names


def test_large_topology_is_non_blocking():
    """Every stage offers at least its offered load (§5.1 sizing)."""
    topo = THREE_TIER_LARGE_TOPOLOGY.build()
    # FA: one uplink per tier-1 FE vs one downlink per host.
    assert topo.fes1_per_pod >= topo.hosts_per_fa
    # Tier-1 FE: fas_per_pod down-links vs fes2_per_pod up-links.
    assert topo.fes2_per_pod >= topo.fas_per_pod * topo.hosts_per_fa // (
        topo.fes1_per_pod
    )
    # Pod uplink capacity (fes2 x spines) vs pod host capacity.
    assert topo.fes2_per_pod * topo.spines >= (
        topo.fas_per_pod * topo.hosts_per_fa
    )
    assert topo.num_fas == 32
    assert topo.num_fas * topo.hosts_per_fa == 128


def test_large_scenarios_have_committed_goldens():
    recorded = {golden_name(s) for s in golden_specs()}
    for name in LARGE_SCENARIOS:
        matching = [g for g in recorded if g.startswith(name + "-")]
        assert matching, f"no golden cell recorded for {name}"
        for stem in matching:
            assert (GOLDEN_DIR / f"{stem}.json").exists()


@pytest.mark.slow
def test_large_scenarios_run_sharded_onto_their_goldens():
    """Two worker processes, two large cells, byte-exact golden landing.

    ``run_matrix(shards=2)`` sends each spec to its own process; the
    results must still match the committed golden digests field for
    field (flow-rate and FCT vectors via the same order-sensitive hash
    the digests use).
    """
    specs = [
        s for s in golden_specs() if s.scenario in LARGE_SCENARIOS
    ]
    assert len(specs) == len(LARGE_SCENARIOS)
    results = run_matrix(specs, shards=2)
    for spec, result in zip(specs, results):
        recorded = json.loads(
            (GOLDEN_DIR / f"{golden_name(spec)}.json").read_text()
        )["digest"]
        assert result.spec_hash == recorded["spec_hash"]
        assert result.delivered_bytes == recorded["delivered_bytes"]
        assert result.drops == recorded["drops"]
        assert result.sim_time_ns == recorded["sim_time_ns"]
        assert values_hash(result.flow_rates_gbps) == (
            recorded["flow_rates_hash"]
        )
        assert values_hash(result.fcts_ns) == recorded["fcts_hash"]


def test_large_scenario_specs_build_without_running():
    for name in LARGE_SCENARIOS:
        spec = build_scenario(name)
        assert spec.scenario == name
        assert spec.topology.kind == "three_tier"
        assert spec.topology.params["pods"] == 4
