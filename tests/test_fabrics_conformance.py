"""Conformance suite for the fabric contract (repro.fabrics).

Every registered fabric runs through the same topology x workload
matrix and must satisfy the same contract: build through the registry,
attach hosts, run, and report a well-formed
:class:`~repro.fabrics.base.FabricMetrics`.  Stardust additionally
must stay lossless inside the fabric, and every fabric must be
deterministic in-process (hermetic runs of the same spec are
bit-identical).
"""

from __future__ import annotations

import inspect

import pytest

from repro.experiments.runner import run_spec
from repro.experiments.spec import ScenarioSpec, TopologySpec
from repro.fabrics import (
    FabricMetrics,
    FabricNetwork,
    PushFabricNetwork,
    StardustNetwork,
    UnknownFabricError,
    build_fabric,
    fabric_names,
    get_fabric,
)
from repro.sim.stats import Histogram

TOPOLOGIES = {
    "one_tier": TopologySpec(
        "one_tier", dict(num_fas=4, uplinks_per_fa=4, hosts_per_fa=2)
    ),
    "two_tier": TopologySpec(
        "two_tier",
        dict(pods=2, fas_per_pod=2, fes_per_pod=2, spines=2, hosts_per_fa=2),
    ),
    "three_tier": TopologySpec(
        "three_tier",
        dict(
            pods=2, fas_per_pod=2, fes1_per_pod=2, fes2_per_pod=2,
            spines=2, hosts_per_fa=1,
        ),
    ),
}

WORKLOADS = {
    "permutation": {"kind": "permutation"},
    "uniform_random": {"kind": "uniform_random", "utilization": 0.5,
                       "packet_bytes": 1000},
}


def _spec(fabric: str, topo_name: str, workload_name: str) -> ScenarioSpec:
    return ScenarioSpec(
        scenario=f"conformance-{topo_name}-{workload_name}",
        topology=TOPOLOGIES[topo_name],
        fabric=fabric,
        transport="tcp" if workload_name == "permutation" else "none",
        workload=WORKLOADS[workload_name],
        seed=3,
        warmup_ns=50_000,
        measure_ns=150_000,
    )


def _assert_metrics_schema(metrics: FabricMetrics, fabric: str) -> None:
    assert metrics.fabric == get_fabric(fabric).name
    assert isinstance(metrics.cell_latency_ns, Histogram)
    assert isinstance(metrics.packet_latency_ns, Histogram)
    assert isinstance(metrics.queue_depth, Histogram)
    assert metrics.queue_depth_unit in ("cells", "bytes")
    assert isinstance(metrics.ingress_drops, int) and metrics.ingress_drops >= 0
    assert isinstance(metrics.fabric_drops, int) and metrics.fabric_drops >= 0
    assert isinstance(metrics.delivered_bytes, int)
    assert metrics.total_drops == metrics.ingress_drops + metrics.fabric_drops
    summary = metrics.queue_summary()
    if metrics.queue_depth.count:
        unit = metrics.queue_depth_unit
        assert set(summary) == {f"queue_mean_{unit}", f"queue_p99_{unit}"}
    else:
        assert summary == {}


class TestRegistry:
    def test_both_fabrics_registered(self):
        assert fabric_names() == ["push", "stardust"]
        assert get_fabric("stardust").cls is StardustNetwork
        assert get_fabric("push").cls is PushFabricNetwork

    def test_alias_resolves_to_canonical_entry(self):
        assert get_fabric("ethernet") is get_fabric("push")

    def test_unknown_name_lists_known(self):
        with pytest.raises(UnknownFabricError) as excinfo:
            get_fabric("infiniband")
        message = str(excinfo.value)
        assert "infiniband" in message
        assert "stardust" in message and "push" in message

    @pytest.mark.parametrize("name", ["stardust", "push", "ethernet"])
    def test_instantiates_through_registry(self, name):
        net = build_fabric(name, TOPOLOGIES["two_tier"].build())
        assert isinstance(net, FabricNetwork)
        assert net.plan.tiers == 2
        _assert_metrics_schema(net.collect_metrics(), name)

    def test_register_without_docstring_gets_empty_description(self):
        from repro.fabrics import registry as fabric_registry

        @fabric_registry.fabric("tmp-nodoc")
        class NoDoc:
            pass

        try:
            entry = fabric_registry.get_fabric("tmp-nodoc")
            assert entry.cls is NoDoc
            assert entry.description == ""
        finally:
            del fabric_registry._REGISTRY["tmp-nodoc"]

    def test_runner_has_no_fabric_sniffing(self):
        # The acceptance criterion in ISSUE 2: executors must use the
        # typed metrics surface, never duck-type the fabric.
        from repro.experiments import runner

        assert "hasattr" not in inspect.getsource(runner)


class TestConformanceMatrix:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("topo", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("fabric", fabric_names())
    def test_fabric_runs_and_reports(self, fabric, topo, workload):
        spec = _spec(fabric, topo, workload)
        result = run_spec(spec)  # hermetic: resets flow ids first
        assert result.delivered_bytes > 0
        assert result.sim_time_ns == spec.warmup_ns + spec.measure_ns

        # Build the same fabric directly and check the metrics schema.
        net = build_fabric(fabric, spec.topology.build())
        _assert_metrics_schema(net.collect_metrics(), fabric)

    @pytest.mark.parametrize("topo", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("fabric", fabric_names())
    def test_in_process_determinism(self, fabric, topo):
        spec = _spec(fabric, topo, "permutation")
        first = run_spec(spec).to_dict()
        second = run_spec(spec).to_dict()
        assert first == second

    def test_push_delivered_bytes_counts_payload(self):
        # delivered_bytes must be payload handed to hosts (Stardust
        # semantics), not wire bytes — cross-fabric comparisons depend
        # on the two fabrics agreeing on the unit.
        from repro.net.addressing import PortAddress
        from tests.conftest import RecordingHost

        net = build_fabric("push", TOPOLOGIES["one_tier"].build())
        hosts = {}
        for fa in range(4):
            for port in range(2):
                addr = PortAddress(fa, port)
                host = RecordingHost(net.sim, f"h{fa}.{port}", addr)
                net.attach_host(addr, host)
                hosts[addr] = host
        hosts[PortAddress(0, 0)].send_to(PortAddress(2, 1), 3000)
        net.run(1_000_000)
        assert len(hosts[PortAddress(2, 1)].received) == 1
        assert net.collect_metrics().delivered_bytes == 3000
        assert net.fabric_drop_count() == 0

    @pytest.mark.parametrize("topo", sorted(TOPOLOGIES))
    def test_stardust_fabric_stays_lossless(self, topo):
        # §5.5: the pull fabric never drops a cell; loss, if any, is
        # at the ingress buffers and accounted separately.
        import random

        from repro.experiments.builders import build_network
        from repro.net.flow import reset_flow_ids
        from repro.transport.host import make_hosts
        from repro.workloads.permutation import (
            host_permutation,
            start_permutation_flows,
        )

        reset_flow_ids()
        spec = _spec("stardust", topo, "permutation")
        net = build_network(spec)
        addrs = spec.topology.addresses()
        hosts, _tracker = make_hosts(net, addrs)
        mapping = host_permutation(addrs, random.Random(3))
        start_permutation_flows(hosts, mapping)
        net.run(200_000)
        metrics = net.collect_metrics()
        assert metrics.fabric_drops == 0
        assert metrics.queue_depth_unit == "cells"
