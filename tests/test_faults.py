"""The fault-injection subsystem: plans, injector, resilience metrics.

Covers plan validation/serialization, spec integration (hash
stability), injector actions on both fabrics (link/element/edge death,
degraded rate, seeded storms), the push baseline's ECMP rehash
blackholing model, and the zero-cost guarantee for unfaulted runs.
"""

from __future__ import annotations

import pytest

from repro.core.network import OneTierSpec
from repro.experiments.registry import build_scenario
from repro.experiments.runner import run_spec, run_spec_with_network
from repro.experiments.spec import ScenarioSpec, TopologySpec, kind_for_fabric
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultTargetError,
    attach_plan,
    degrade,
    element_down,
    element_up,
    link_down,
    link_up,
)
from repro.fabrics.push import PushFabricNetwork
from repro.fabrics.registry import UnknownFabricError
from repro.fabrics.stardust import StardustNetwork
from repro.net.addressing import PortAddress
from repro.perf.digest import run_digest
from repro.sim.units import MICROSECOND, MILLISECOND, gbps

from tests.conftest import RecordingHost, build_network

ONE_TIER = OneTierSpec(num_fas=4, uplinks_per_fa=4, hosts_per_fa=1)
SMALL_TOPO = TopologySpec(
    "one_tier", dict(num_fas=4, uplinks_per_fa=4, hosts_per_fa=1)
)


def attach_push_hosts(net, spec):
    hosts = {}
    for fa in range(spec.num_fas):
        for port in range(spec.hosts_per_fa):
            addr = PortAddress(fa, port)
            host = RecordingHost(net.sim, f"h{fa}.{port}", addr)
            net.attach_host(addr, host)
            hosts[addr] = host
    return hosts


# ----------------------------------------------------------------------
# FaultPlan / FaultEvent validation and serialization
# ----------------------------------------------------------------------


class TestPlanValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("meteor_strike", 0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="at_ns"):
            FaultEvent("link_down", -1, edge=0, uplink=0)

    def test_missing_required_fields_listed(self):
        with pytest.raises(ValueError, match="edge, uplink"):
            FaultEvent("link_down", 0)

    def test_negative_coordinates_rejected(self):
        # Negative indices would silently resolve onto the wrong
        # device via Python negative indexing.
        with pytest.raises(ValueError, match="edge must be >= 0"):
            link_down(0, edge=-1, uplink=0)
        with pytest.raises(ValueError, match="uplink must be >= 0"):
            link_down(0, edge=0, uplink=-2)
        with pytest.raises(ValueError, match="element must be >= 0"):
            element_down(0, element=-1)

    def test_degrade_needs_valid_factor_and_interval(self):
        with pytest.raises(ValueError, match="factor"):
            degrade(0, 10, edge=0, uplink=0, factor=1.5)
        with pytest.raises(ValueError, match="until_ns"):
            degrade(10, 10, edge=0, uplink=0, factor=0.5)

    def test_storm_validates_count_and_downtime(self):
        with pytest.raises(ValueError, match="count"):
            FaultEvent(
                "random_storm", 0, until_ns=10, seed=1, count=0,
                downtime_ns=5,
            )
        with pytest.raises(ValueError, match="downtime"):
            FaultEvent(
                "random_storm", 0, until_ns=10, seed=1, count=1,
                downtime_ns=0,
            )

    def test_plan_needs_a_disruptive_event(self):
        with pytest.raises(ValueError, match="at least one event"):
            FaultPlan(events=[])
        with pytest.raises(ValueError, match="disruptive"):
            FaultPlan(events=[link_up(5, 0, 0)])

    def test_plan_knob_validation(self):
        events = [link_down(5, 0, 0)]
        with pytest.raises(ValueError, match="sample_period"):
            FaultPlan(events=events, sample_period_ns=0)
        with pytest.raises(ValueError, match="recovery_fraction"):
            FaultPlan(events=events, recovery_fraction=1.5)
        with pytest.raises(ValueError, match="baseline_samples"):
            FaultPlan(events=events, baseline_samples=0)


class TestPlanSerialization:
    def test_event_round_trip_drops_none_fields(self):
        event = link_down(100, 2, 3)
        data = event.to_dict()
        assert data == {
            "kind": "link_down", "at_ns": 100, "edge": 2, "uplink": 3
        }
        assert FaultEvent.from_dict(data) == event

    def test_plan_round_trip(self):
        plan = FaultPlan(
            events=[
                link_down(100, 0, 1),
                link_up(200, 0, 1),
                degrade(300, 400, edge=1, uplink=0, factor=0.25),
            ],
            sample_period_ns=10_000,
        )
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.to_dict() == plan.to_dict()
        assert rebuilt.first_fault_ns() == 100

    def test_plan_accepts_event_dicts(self):
        plan = FaultPlan(
            events=[{"kind": "element_down", "at_ns": 50, "element": 1}]
        )
        assert plan.events[0] == element_down(50, 1)


# ----------------------------------------------------------------------
# ScenarioSpec integration: hash stability is the cache/golden contract
# ----------------------------------------------------------------------


class TestSpecIntegration:
    def test_unfaulted_spec_omits_faults_key(self):
        spec = ScenarioSpec(scenario="s", topology=SMALL_TOPO)
        assert "faults" not in spec.to_dict()

    def test_unfaulted_hash_is_unchanged_by_field_existing(self):
        # The exact pre-fault-subsystem content hash of this spec; if
        # this drifts, every cached result and golden trace is orphaned.
        spec = ScenarioSpec(scenario="s", topology=SMALL_TOPO, seed=3)
        data = spec.to_dict()
        rebuilt = ScenarioSpec.from_dict(data)
        assert rebuilt.content_hash() == spec.content_hash()
        assert "faults" not in spec.to_json()

    def test_faulted_spec_hashes_differently_and_round_trips(self):
        base = ScenarioSpec(scenario="s", topology=SMALL_TOPO)
        plan = FaultPlan(events=[link_down(10, 0, 0)])
        faulted = base.with_updates(faults=plan.to_dict())
        assert faulted.content_hash() != base.content_hash()
        again = ScenarioSpec.from_json(faulted.to_json())
        assert again.content_hash() == faulted.content_hash()

    def test_spec_accepts_plan_instance_and_validates(self):
        plan = FaultPlan(events=[link_down(10, 0, 0)])
        spec = ScenarioSpec(scenario="s", topology=SMALL_TOPO, faults=plan)
        assert spec.faults == plan.to_dict()
        with pytest.raises(ValueError, match="unknown fault kind"):
            ScenarioSpec(
                scenario="s", topology=SMALL_TOPO,
                faults={"events": [{"kind": "nope", "at_ns": 0}]},
            )

    def test_kind_for_fabric_resolves_aliases(self):
        assert kind_for_fabric("stardust") == "stardust"
        assert kind_for_fabric("push") == "tcp"
        assert kind_for_fabric("ethernet") == "tcp"
        with pytest.raises(UnknownFabricError):
            kind_for_fabric("warp-drive")


# ----------------------------------------------------------------------
# Injector actions on the Stardust fabric
# ----------------------------------------------------------------------


class TestStardustInjection:
    def test_link_down_counts_losses_and_traffic_survives(self):
        net, hosts = build_network(ONE_TIER)
        plan = FaultPlan(
            events=[
                link_down(5 * MICROSECOND, 0, 0),
                link_up(2 * MILLISECOND, 0, 0),
            ]
        )
        injector = attach_plan(plan, net)
        src, dst = hosts[PortAddress(0, 0)], PortAddress(2, 0)
        for _ in range(40):
            src.send_to(dst, 1400)
        net.run(5 * MILLISECOND)
        metrics = net.collect_metrics()
        assert metrics.resilience is not None
        assert metrics.resilience.faults_injected == 1
        # Both directions failed; queued/in-flight cells were counted.
        assert metrics.resilience.frames_lost_in_transit > 0
        # The stream kept flowing over the three surviving links.
        assert len(hosts[dst].received) >= 35
        # The pair is back up after the repair event.
        up_link = net.fas[0].uplinks[0]
        assert up_link.up
        assert injector.faults_applied == 1

    def test_element_death_and_revival(self):
        net, hosts = build_network(ONE_TIER)
        plan = FaultPlan(
            events=[
                element_down(5 * MICROSECOND, 0),
                element_up(1 * MILLISECOND, 0),
            ]
        )
        attach_plan(plan, net)
        src, dst = hosts[PortAddress(0, 0)], PortAddress(3, 0)
        for _ in range(40):
            src.send_to(dst, 1200)
        net.run(4 * MILLISECOND)
        fe0 = net.fes[0]
        assert fe0.alive  # revived
        assert all(p.out.up for p in fe0.fabric_ports)
        assert len(hosts[dst].received) == 40  # lossless spray healing
        # During death every inbound link was down too.
        assert all(
            up.up for fa in net.fas for up in fa.uplinks
        )

    def test_dead_element_counts_arrivals(self):
        net, hosts = build_network(ONE_TIER)
        fe0 = net.fes[0]
        fe0.fail()  # out-links die, but inbound links stay up
        src, dst = hosts[PortAddress(0, 0)], PortAddress(2, 0)
        for _ in range(30):
            src.send_to(dst, 1400)
        net.run(3 * MILLISECOND)
        # The FA still sprays onto the (alive) link toward the dead FE,
        # and the dead FE counts what it swallows.
        assert fe0.dead_drops > 0
        assert net.fabric_cell_drops() >= fe0.dead_drops

    def test_edge_death_cuts_its_hosts_only(self):
        net, hosts = build_network(ONE_TIER)
        plan = FaultPlan(
            events=[FaultEvent("edge_down", 5 * MICROSECOND, edge=3)]
        )
        attach_plan(plan, net)
        src, cut = hosts[PortAddress(0, 0)], PortAddress(3, 0)
        alive = PortAddress(2, 0)
        for _ in range(20):
            src.send_to(cut, 1000)
            src.send_to(alive, 1000)
        net.run(4 * MILLISECOND)
        assert len(hosts[alive].received) == 20
        assert len(hosts[cut].received) < 20
        assert not net.fas[3].alive

    def test_degrade_interval_slows_then_restores(self):
        net, _hosts = build_network(ONE_TIER)
        plan = FaultPlan(
            events=[
                degrade(
                    10 * MICROSECOND, 500 * MICROSECOND,
                    edge=0, uplink=0, factor=0.1,
                )
            ]
        )
        attach_plan(plan, net)
        up = net.fas[0].uplinks[0]
        original = up.rate_bps
        net.sim.run(until=20 * MICROSECOND)
        assert up.rate_bps == original // 10
        assert up.up  # degraded, not down
        net.run(1 * MILLISECOND)
        assert up.rate_bps == original
        metrics = net.collect_metrics()
        assert metrics.resilience.faults_injected == 1

    def test_bad_targets_raise(self):
        net, _ = build_network(ONE_TIER)
        with pytest.raises(FaultTargetError, match="no edge device"):
            attach_plan(FaultPlan(events=[link_down(0, 99, 0)]), net)
        net2, _ = build_network(ONE_TIER)
        with pytest.raises(FaultTargetError, match="uplinks"):
            attach_plan(FaultPlan(events=[link_down(0, 0, 99)]), net2)
        net3, _ = build_network(ONE_TIER)
        with pytest.raises(FaultTargetError, match="no element"):
            attach_plan(FaultPlan(events=[element_down(0, 42)]), net3)

    def test_injector_is_single_use_and_single_attach(self):
        net, _ = build_network(ONE_TIER)
        plan = FaultPlan(events=[link_down(10, 0, 0)])
        injector = attach_plan(plan, net)
        with pytest.raises(RuntimeError, match="single-use"):
            injector.arm()
        with pytest.raises(ValueError, match="already attached"):
            net.attach_faults(FaultInjector(plan, net))


# ----------------------------------------------------------------------
# Push baseline: ECMP rehash blackholing + device death
# ----------------------------------------------------------------------


class TestPushInjection:
    def _net(self, rehash_ns):
        from repro.baselines.ethernet import EthConfig

        net = PushFabricNetwork(
            ONE_TIER,
            config=EthConfig(ecmp_rehash_ns=rehash_ns),
            fabric_link_rate_bps=gbps(10),
            host_link_rate_bps=gbps(10),
        )
        return net, attach_push_hosts(net, ONE_TIER)

    def test_blackholing_until_rehash_then_reroute(self):
        net, hosts = self._net(rehash_ns=300 * MICROSECOND)
        plan = FaultPlan(events=[link_down(10 * MICROSECOND, 0, 0)])
        attach_plan(plan, net)
        src = hosts[PortAddress(0, 0)]
        dst = PortAddress(2, 0)
        net.sim.run(until=20 * MICROSECOND)  # fault applied
        tor0 = net.tors[0]
        # Find a flow id ECMP hashes onto the dead port and keep
        # sending it: blackholed during the window, delivered after.
        down_port = tor0.up_ports[0]
        assert not down_port.out.up
        for flow_id in range(200):
            probe = src.send_to(dst, 1000, flow_id=flow_id)
            chosen = tor0._route(probe)
            if chosen is down_port:
                victim = flow_id
                break
        else:
            pytest.fail("no flow hashes onto the dead port")
        net.run(50 * MICROSECOND)
        assert tor0.blackholed > 0
        assert victim in tor0.blackholed_flow_ids
        before = len(hosts[dst].received)
        # After the rehash interval the dead port leaves the ECMP set.
        net.sim.run(until=400 * MICROSECOND)
        src.send_to(dst, 1000, flow_id=victim)
        net.run(2 * MILLISECOND)
        assert len(hosts[dst].received) > before
        resilience = net.collect_metrics().resilience
        assert resilience.blackholed_flows >= 1
        assert resilience.blackholed_packets == sum(
            s.blackholed for s in (*net.tors, *net.fabric)
        )

    def test_instant_rehash_keeps_historical_behavior(self):
        net, hosts = self._net(rehash_ns=0)
        plan = FaultPlan(events=[link_down(10 * MICROSECOND, 0, 0)])
        attach_plan(plan, net)
        src, dst = hosts[PortAddress(0, 0)], PortAddress(2, 0)
        for i in range(40):
            src.send_to(dst, 1000, flow_id=i)
        net.run(3 * MILLISECOND)
        assert net.tors[0].blackholed == 0
        assert len(hosts[dst].received) == 40

    def test_element_death_drops_then_heals(self):
        net, hosts = self._net(rehash_ns=0)
        plan = FaultPlan(
            events=[
                element_down(10 * MICROSECOND, 0),
                element_up(500 * MICROSECOND, 0),
            ]
        )
        attach_plan(plan, net)
        src, dst = hosts[PortAddress(0, 0)], PortAddress(2, 0)
        for i in range(40):
            src.send_to(dst, 1000, flow_id=i)
        net.run(3 * MILLISECOND)
        sw = net.fabric[0]
        assert sw.alive
        assert all(p.out.up for p in sw.eth_ports)
        # ECMP rerouted around the dead switch: everything arrived.
        assert len(hosts[dst].received) == 40


# ----------------------------------------------------------------------
# Storms: seeded, deterministic
# ----------------------------------------------------------------------


class TestStorms:
    def _applied(self, storm_seed):
        net, hosts = build_network(ONE_TIER)
        plan = FaultPlan(
            events=[
                FaultEvent(
                    "random_storm", 10 * MICROSECOND,
                    until_ns=2 * MILLISECOND, seed=storm_seed,
                    count=5, downtime_ns=100 * MICROSECOND,
                )
            ]
        )
        injector = attach_plan(plan, net)
        src, dst = hosts[PortAddress(0, 0)], PortAddress(2, 0)
        for _ in range(30):
            src.send_to(dst, 1200)
        net.run(4 * MILLISECOND)
        return injector, net, hosts[dst]

    def test_storm_is_deterministic_per_seed(self):
        first, _, _ = self._applied(11)
        second, _, _ = self._applied(11)
        assert first.applied == second.applied
        assert first.faults_applied == 5
        other, _, _ = self._applied(12)
        assert other.applied != first.applied

    def test_storm_links_all_restored_and_traffic_survives(self):
        injector, net, dst_host = self._applied(11)
        assert all(
            up.up for fa in net.fas for up in fa.uplinks
        )
        assert len(dst_host.received) >= 25

    def test_storm_with_more_failures_than_links(self):
        net, _ = build_network(
            OneTierSpec(num_fas=2, uplinks_per_fa=2, hosts_per_fa=1)
        )
        plan = FaultPlan(
            events=[
                FaultEvent(
                    "random_storm", 0, until_ns=1 * MILLISECOND, seed=3,
                    count=10, downtime_ns=50 * MICROSECOND,
                )
            ]
        )
        injector = attach_plan(plan, net)
        net.run(2 * MILLISECOND)
        assert injector.faults_applied == 10


# ----------------------------------------------------------------------
# Zero cost when unfaulted + scenario-level determinism
# ----------------------------------------------------------------------


class TestZeroCostAndDeterminism:
    def test_unfaulted_network_has_no_injector_and_empty_summary(self):
        net, _ = build_network(ONE_TIER)
        net.run(100 * MICROSECOND)
        assert net.fault_injector is None
        metrics = net.collect_metrics()
        assert metrics.resilience is None
        assert metrics.resilience_summary() == {}

    def test_faulted_scenarios_are_digest_stable(self):
        spec = build_scenario(
            "permutation_link_failure", kind="stardust",
            topology=SMALL_TOPO,
            warmup_ns=100 * MICROSECOND, measure_ns=300 * MICROSECOND,
            fail_at_ns=150 * MICROSECOND, downtime_ns=100 * MICROSECOND,
        )
        first = run_digest(*run_spec_with_network(spec))
        second = run_digest(*run_spec_with_network(spec))
        assert first == second

    def test_fault_scenarios_registered_with_resilience_metrics(self):
        spec = build_scenario(
            "permutation_link_failure", kind="tcp", topology=SMALL_TOPO,
            warmup_ns=100 * MICROSECOND, measure_ns=300 * MICROSECOND,
            fail_at_ns=150 * MICROSECOND, downtime_ns=100 * MICROSECOND,
        )
        result = run_spec(spec)
        assert result.metrics["faults_injected"] == 1
        assert "measured_recovery_ns" in result.metrics
        assert "frames_lost_in_transit" in result.metrics

    def test_stardust_reports_measured_next_to_analytical(self):
        spec = build_scenario(
            "permutation_link_failure", kind="stardust",
            topology=SMALL_TOPO,
            warmup_ns=200 * MICROSECOND, measure_ns=400 * MICROSECOND,
            fail_at_ns=300 * MICROSECOND, downtime_ns=100 * MICROSECOND,
        )
        result = run_spec(spec)
        assert "analytical_recovery_ns" in result.metrics
        assert result.metrics["analytical_recovery_ns"] > 0
        assert "measured_recovery_ns" in result.metrics

    def test_incast_element_failure_and_storm_registered(self):
        for name in ("incast_element_failure", "random_fault_storm"):
            spec = build_scenario(name, kind="stardust")
            assert spec.faults is not None
            assert spec.scenario == name


class TestDynamicProtocolDetection:
    def test_protocol_detect_reported_under_dynamic_reachability(self):
        net = StardustNetwork.for_experiment(
            ONE_TIER, rate=gbps(10), reachability="dynamic"
        )
        hosts = {}
        for fa in range(ONE_TIER.num_fas):
            addr = PortAddress(fa, 0)
            host = RecordingHost(net.sim, f"h{fa}", addr)
            net.attach_host(addr, host)
            hosts[addr] = host
        plan = FaultPlan(
            events=[
                link_down(50 * MICROSECOND, 0, 0),
                link_up(1 * MILLISECOND, 0, 0),
            ],
            sample_period_ns=10_000,
        )
        attach_plan(plan, net)
        src, dst = hosts[PortAddress(0, 0)], PortAddress(2, 0)
        for _ in range(50):
            src.send_to(dst, 1000)
        net.run(3 * MILLISECOND)
        resilience = net.collect_metrics().resilience
        assert resilience.protocol_detect_ns is not None
        # Detection takes miss_threshold periods of silence, give or
        # take sampling quantization — never instantaneous.
        assert resilience.protocol_detect_ns >= 10_000
        assert resilience.analytical_recovery_ns is not None
        assert len(hosts[dst].received) == 50
