"""Integration tests for the three-tier fabric (§5.1)."""

import pytest

from repro.core.network import ThreeTierSpec
from repro.net.addressing import PortAddress
from repro.sim.units import MICROSECOND, MILLISECOND

from tests.conftest import build_network

SPEC = ThreeTierSpec(
    pods=2, fas_per_pod=2, fes1_per_pod=2, fes2_per_pod=2,
    spines=2, hosts_per_fa=2,
)


@pytest.fixture
def three_tier():
    return build_network(SPEC)


class TestThreeTierStructure:
    def test_device_counts(self, three_tier):
        net, _hosts = three_tier
        assert len(net.fas) == 4
        tiers = [fe.tier for fe in net.fes]
        assert tiers.count(1) == 4
        assert tiers.count(2) == 4
        assert tiers.count(3) == 2

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ThreeTierSpec(
                pods=0, fas_per_pod=1, fes1_per_pod=1, fes2_per_pod=1,
                spines=1, hosts_per_fa=1,
            )
        with pytest.raises(ValueError):
            ThreeTierSpec(
                pods=1, fas_per_pod=1, fes1_per_pod=0, fes2_per_pod=1,
                spines=1, hosts_per_fa=1,
            )

    def test_tiers_property(self):
        assert SPEC.tiers == 3
        assert SPEC.num_fas == 4


class TestThreeTierDataPath:
    def test_cross_pod_delivery(self, three_tier):
        net, hosts = three_tier
        src = hosts[PortAddress(0, 0)]  # pod 0
        dst = PortAddress(3, 1)  # pod 1
        src.send_to(dst, 3000)
        net.run(500 * MICROSECOND)
        assert len(hosts[dst].received) == 1

    def test_cross_pod_traffic_crosses_spines(self, three_tier):
        net, hosts = three_tier
        src = hosts[PortAddress(0, 0)]
        for _ in range(10):
            src.send_to(PortAddress(2, 0), 1000)
        net.run(1 * MILLISECOND)
        spine_cells = sum(
            fe.cells_forwarded for fe in net.fes if fe.tier == 3
        )
        assert spine_cells > 0

    def test_same_pod_traffic_stays_below_spines(self, three_tier):
        net, hosts = three_tier
        src = hosts[PortAddress(0, 0)]
        for _ in range(10):
            src.send_to(PortAddress(1, 0), 1000)  # same pod
        net.run(1 * MILLISECOND)
        spine_cells = sum(
            fe.cells_forwarded for fe in net.fes if fe.tier == 3
        )
        assert spine_cells == 0
        assert len(hosts[PortAddress(1, 0)].received) == 10

    def test_all_to_all_lossless(self, three_tier):
        net, hosts = three_tier
        for src_addr, host in hosts.items():
            for dst_addr in hosts:
                if dst_addr.fa != src_addr.fa:
                    host.send_to(dst_addr, 800)
        net.run(5 * MILLISECOND)
        expected = sum(
            1 for a in hosts for b in hosts if a.fa != b.fa
        )
        assert sum(len(h.received) for h in hosts.values()) == expected
        assert net.fabric_cell_drops() == 0

    def test_spray_uses_all_spine_paths(self, three_tier):
        net, hosts = three_tier
        src = hosts[PortAddress(0, 0)]
        for _ in range(60):
            src.send_to(PortAddress(2, 0), 1500)
        net.run(2 * MILLISECOND)
        spines = [fe for fe in net.fes if fe.tier == 3]
        assert all(s.cells_forwarded > 0 for s in spines)

    def test_in_order_delivery(self, three_tier):
        net, hosts = three_tier
        src = hosts[PortAddress(0, 1)]
        dst = PortAddress(3, 0)
        sent = [src.send_to(dst, 700 + i) for i in range(30)]
        net.run(3 * MILLISECOND)
        got = [p.pkt_id for _, p in hosts[dst].received]
        assert got == [p.pkt_id for p in sent]
