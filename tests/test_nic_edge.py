"""Tests for the §8 NIC-edge vision (core.nic)."""


from repro.core.config import StardustConfig
from repro.core.nic import (
    NIC_DEFAULTS,
    StardustNic,
    build_nic_edge_network,
    nic_config,
)
from repro.net.addressing import PortAddress
from repro.net.flow import Flow
from repro.sim.units import KB, MILLISECOND
from repro.transport.host import make_hosts


class TestNicConfig:
    def test_reductions_applied(self):
        cfg = nic_config()
        assert cfg.ingress_buffer_bytes == NIC_DEFAULTS[
            "ingress_buffer_bytes"
        ]
        assert cfg.egress_buffer_bytes == NIC_DEFAULTS["egress_buffer_bytes"]

    def test_base_config_fields_preserved(self):
        base = StardustConfig(cell_size_bytes=128, cell_header_bytes=16)
        cfg = nic_config(base)
        assert cfg.cell_size_bytes == 128

    def test_smaller_than_tor_defaults(self):
        tor = StardustConfig()
        nic = nic_config()
        assert nic.ingress_buffer_bytes < tor.ingress_buffer_bytes
        assert nic.egress_buffer_bytes < tor.egress_buffer_bytes


class TestNicEdgeNetwork:
    def test_edge_devices_are_nics(self):
        net = build_nic_edge_network(n_nics=4, uplinks_per_nic=2)
        assert all(isinstance(fa, StardustNic) for fa in net.fas)

    def test_end_to_end_transfer(self):
        net = build_nic_edge_network(n_nics=4, uplinks_per_nic=4)
        addrs = [PortAddress(i, 0) for i in range(4)]
        hosts, tracker = make_hosts(net, addrs)
        flow = Flow(src=addrs[0], dst=addrs[3], size_bytes=50 * KB)
        hosts[addrs[0]].start_flow(flow)
        net.run(20 * MILLISECOND)
        assert tracker.get(flow.flow_id).completed_ns is not None
        assert net.fabric_cell_drops() == 0

    def test_single_homed_nic_has_no_table(self):
        net = build_nic_edge_network(n_nics=3, uplinks_per_nic=1)
        nic = net.fas[0]
        assert nic.is_single_homed
        assert nic.reachability_entries() == 0

    def test_multi_homed_nic_tracks_uplinks(self):
        net = build_nic_edge_network(n_nics=3, uplinks_per_nic=3)
        nic = net.fas[0]
        assert not nic.is_single_homed
        assert nic.reachability_entries() == 3

    def test_nic_edge_with_dynamic_reachability(self):
        net = build_nic_edge_network(
            n_nics=3, uplinks_per_nic=3, reachability="dynamic"
        )
        addrs = [PortAddress(i, 0) for i in range(3)]
        hosts, tracker = make_hosts(net, addrs)
        net.run(1 * MILLISECOND)  # converge
        flow = Flow(src=addrs[0], dst=addrs[2], size_bytes=20 * KB)
        hosts[addrs[0]].start_flow(flow)
        net.run(20 * MILLISECOND)
        assert tracker.get(flow.flow_id).completed_ns is not None
