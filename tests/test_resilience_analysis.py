"""Appendix E resilience analysis: validation, the worked example, and
the formula cross-checked against *measured* simulated recovery.

The cross-check is the point of this file: the 652us number stops
being a formula the simulator merely prints and becomes a prediction
the simulator is held to, within tolerance, for matched protocol
parameters.
"""

from __future__ import annotations

import pytest

from repro.analysis.resilience import (
    ReachabilityParams,
    messages_per_table,
    reachability_overhead_fraction,
    recovery_time_ns,
)
from repro.core.config import StardustConfig
from repro.core.network import OneTierSpec, StardustNetwork
from repro.faults import FaultPlan, attach_plan, expected_recovery_ns, link_down
from repro.net.addressing import PortAddress
from repro.sim.units import MICROSECOND, gbps

from tests.conftest import RecordingHost


class TestParameterValidation:
    def test_tiers_must_be_positive(self):
        with pytest.raises(ValueError, match="tiers"):
            ReachabilityParams(tiers=0, propagation_ns=())

    def test_propagation_length_must_match_hop_count(self):
        # 2n-1 hops: a two-tier fabric crosses three links.
        with pytest.raises(ValueError, match="per-hop propagation"):
            ReachabilityParams(tiers=2, propagation_ns=(500, 50))
        with pytest.raises(ValueError, match="per-hop propagation"):
            ReachabilityParams(tiers=1, propagation_ns=(500, 50, 10))
        # Correct lengths construct fine.
        ReachabilityParams(tiers=1, propagation_ns=(500,))
        ReachabilityParams(tiers=3, propagation_ns=(1, 2, 3, 4, 5))

    def test_message_interval_is_cycles_over_frequency(self):
        params = ReachabilityParams(
            core_frequency_hz=2_000_000_000, cycles_between_messages=10_000
        )
        assert params.message_interval_ns == pytest.approx(5_000)


class TestWorkedExample:
    def test_652us_table4_example(self):
        """Table 4's values reproduce Appendix E's 652us exactly."""
        params = ReachabilityParams()
        assert messages_per_table(params) == 7
        assert recovery_time_ns(params) == pytest.approx(652_050)
        assert reachability_overhead_fraction(params) == pytest.approx(
            0.000384
        )

    def test_messages_per_table_ceiling(self):
        # 32_000 hosts / (40 x 128) = 6.25 -> 7 messages.
        assert messages_per_table(ReachabilityParams()) == 7
        exact = ReachabilityParams(total_hosts=5_120)
        assert messages_per_table(exact) == 1

    def test_recovery_time_formula_shape(self):
        """t = sum over 2n-1 hops of (t' + pd_i) x M x th."""
        params = ReachabilityParams(
            tiers=1, propagation_ns=(100,),
            cycles_between_messages=10_000,  # t' = 10us at 1GHz
            total_hosts=128, hosts_per_fa=1, bitmap_bits=128,  # M = 1
            confirm_threshold=3,
        )
        assert recovery_time_ns(params) == pytest.approx(
            (10_000 + 100) * 1 * 3
        )


class TestMeasuredVsAnalytical:
    """Fail a link in a live dynamic-reachability fabric and compare
    the measured remote-exclusion time against the Appendix E formula
    for the *same* protocol parameters."""

    PERIOD = 10 * MICROSECOND

    def _converged_net(self):
        spec = OneTierSpec(num_fas=4, uplinks_per_fa=4, hosts_per_fa=1)
        config = StardustConfig(
            fabric_link_rate_bps=gbps(25),
            host_link_rate_bps=gbps(25),
            reachability_period_ns=self.PERIOD,
            reachability_miss_threshold=3,
            reachability_up_threshold=3,
        )
        net = StardustNetwork(spec, config=config, reachability="dynamic")
        hosts = {}
        for fa in range(spec.num_fas):
            addr = PortAddress(fa, 0)
            host = RecordingHost(net.sim, f"h{fa}", addr)
            net.attach_host(addr, host)
            hosts[addr] = host
        net.run(500 * MICROSECOND)  # converge
        return spec, net, hosts

    def test_remote_exclusion_within_tolerance_of_formula(self):
        spec, net, _hosts = self._converged_net()
        analytical = expected_recovery_ns(net)
        # Matched mapping: t' = period, M = 1 (4 hosts), th = miss
        # threshold, one hop at the fabric propagation delay.
        assert analytical == pytest.approx(
            (self.PERIOD + net.config.fabric_propagation_ns) * 3
        )

        plan = FaultPlan(events=[link_down(0, 0, 0)])
        attach_plan(plan, net)
        t_fail = net.sim.now
        net.sim.run(until=t_fail + 1)  # apply the scheduled fault

        fa0, fa1 = net.fas[0], net.fas[1]
        # Local exclusion is loss-of-signal, instantaneous (§5.10).
        assert len(fa0.eligible_uplinks(2)) == spec.uplinks_per_fa - 1

        # Remote exclusion runs at protocol speed: fa1 must learn, via
        # the failed FE's shrunken advertisement, that the FE no longer
        # reaches fa0.
        t_excluded = None
        for _ in range(400):
            net.run(5 * MICROSECOND)
            if len(fa1.eligible_uplinks(0)) < spec.uplinks_per_fa:
                t_excluded = net.sim.now
                break
        assert t_excluded is not None, "remote FA never learned"
        measured = t_excluded - t_fail

        # The formula predicts the order of magnitude, not the exact
        # event: detection needs th missed periods plus advertisement
        # and confirmation latency, so hold the measurement to a
        # [0.5x, 3x] band around the analytical value.
        assert analytical * 0.5 <= measured <= analytical * 3, (
            f"measured {measured}ns vs analytical {analytical}ns"
        )

    def test_injector_reports_detection_alongside_analytical(self):
        _spec, net, hosts = self._converged_net()
        plan = FaultPlan(
            events=[link_down(50 * MICROSECOND, 0, 0)],
            sample_period_ns=5_000,
        )
        attach_plan(plan, net)
        src, dst = hosts[PortAddress(0, 0)], PortAddress(2, 0)
        for _ in range(50):
            src.send_to(dst, 1000)
        net.run(2_000 * MICROSECOND)
        resilience = net.collect_metrics().resilience
        analytical = resilience.analytical_recovery_ns
        measured = resilience.protocol_detect_ns
        assert analytical is not None and measured is not None
        # Same tolerance band, sampling quantization included.
        assert analytical * 0.5 - 5_000 <= measured <= analytical * 3

    def test_static_reachability_has_no_analytical_prediction(self):
        spec = OneTierSpec(num_fas=2, uplinks_per_fa=2, hosts_per_fa=1)
        net = StardustNetwork(spec)
        assert expected_recovery_ns(net) is None
