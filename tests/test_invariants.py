"""Property-based invariant tests (seeded random, no external deps).

Three families of machine-checked contracts:

* **Conservation** — bytes/packets injected into a fabric equal what
  came out plus what was dropped plus what is still in flight; on the
  lossless Stardust fabric a closed workload must be delivered in full.
* **Event ordering** — the engine fires events in a total order:
  ``(time_ns, scheduling order)``, for any random mix of duplicate
  timestamps, nested scheduling and cancellations.
* **Hermeticity** — ``run_spec`` results are independent of process
  history: the global flow-id space is reset per run, so back-to-back
  runs (with unrelated runs interleaved) are bit-identical.
"""

from __future__ import annotations

import random

from repro.core.cell import VoqId
from repro.core.voq import SharedBufferPool, Voq
from repro.experiments.registry import build_scenario
from repro.experiments.runner import run_spec, run_spec_with_network
from repro.experiments.spec import TopologySpec
from repro.net.addressing import PortAddress
from repro.net.packet import Packet
from repro.perf.digest import run_digest
from repro.sim.engine import Simulator
from repro.sim.units import KB, MICROSECOND, MILLISECOND
from repro.workloads.generator import UniformRandomTraffic

_TINY_ONE_TIER = TopologySpec(
    "one_tier", dict(num_fas=4, uplinks_per_fa=4, hosts_per_fa=2)
)


# ----------------------------------------------------------------------
# Conservation
# ----------------------------------------------------------------------


class TestConservation:
    def test_closed_workload_fully_delivered_on_stardust(self):
        """Lossless fabric + finite flows: every offered byte arrives."""
        rng = random.Random(0x5EED)
        for _ in range(3):
            num_fas = rng.choice([2, 3, 4])
            hosts = rng.choice([1, 2])
            flow_bytes = rng.randrange(10 * KB, 60 * KB)
            spec = build_scenario(
                "many_to_many",
                kind="stardust",
                seed=rng.randrange(1, 1000),
                num_fas=num_fas,
                hosts_per_fa=hosts,
                flow_bytes=flow_bytes,
                timeout_ns=60 * MILLISECOND,
            )
            result = run_spec(spec)
            n_flows = result.metrics["offered_flows"]
            offered = n_flows * flow_bytes
            assert result.drops == 0, "Stardust must be lossless (§5.5)"
            assert result.metrics["completed"] == n_flows
            assert result.delivered_bytes == offered

    def test_open_loop_packet_conservation_on_push(self):
        """sent == received + dropped + in-flight; drains to equality."""
        from repro.experiments.builders import build_network
        from repro.net.flow import reset_flow_ids

        rng = random.Random(0xFAB)
        for _ in range(2):
            seed = rng.randrange(1, 1000)
            spec = build_scenario(
                "uniform_random",
                kind="tcp",  # push fabric, open-loop injectors
                seed=seed,
                utilization=0.9,  # hot enough to force drop-tail losses
                topology=_TINY_ONE_TIER,
                warmup_ns=0,
                measure_ns=300 * MICROSECOND,
            )
            addrs = spec.topology.addresses()
            # Drive the workload by hand (rather than via run_spec) so
            # we can stop the injectors and watch the fabric drain.
            reset_flow_ids()
            net = build_network(spec)
            traffic = UniformRandomTraffic(
                net, addrs, utilization=0.9, packet_bytes=1000, seed=seed
            )
            traffic.start()
            net.run(300 * MICROSECOND)
            sent = traffic.total_sent()
            received = traffic.total_received()
            drops = net.collect_metrics().total_drops
            in_flight = sent - received - drops
            assert in_flight >= 0, "delivered more than was injected"
            # Stop injecting; whatever was in flight must drain to the
            # hosts or the drop counters — nothing vanishes.
            traffic.stop()
            net.run(2 * MILLISECOND)
            sent = traffic.total_sent()
            received = traffic.total_received()
            drops = net.collect_metrics().total_drops
            assert sent == received + drops

    def test_voq_pool_byte_accounting(self):
        """Random push/grant storms keep pool and VOQ byte books exact."""
        rng = random.Random(7)
        for _trial in range(5):
            pool = SharedBufferPool(rng.randrange(20_000, 60_000))
            voqs = [
                Voq(VoqId(dst=PortAddress(fa, 0)), pool) for fa in range(4)
            ]
            queued = {v.id: 0 for v in voqs}
            admitted = dropped = released = 0
            for _ in range(400):
                voq = rng.choice(voqs)
                if rng.random() < 0.6:
                    size = rng.randrange(64, 9000)
                    packet = Packet(
                        size_bytes=size,
                        src=PortAddress(9, 0),
                        dst=voq.id.dst,
                    )
                    if voq.push(packet):
                        queued[voq.id] += size
                        admitted += size
                    else:
                        dropped += size
                else:
                    credit = rng.randrange(1, 16_000)
                    burst = voq.grant(credit)
                    got = sum(p.size_bytes for p in burst)
                    queued[voq.id] -= got
                    released += got
                assert voq.bytes == queued[voq.id]
                assert pool.used_bytes == sum(queued.values())
                assert pool.used_bytes == admitted - released
            assert pool.dropped_bytes == dropped


# ----------------------------------------------------------------------
# Event ordering
# ----------------------------------------------------------------------


class TestEventOrdering:
    def test_total_order_under_duplicate_timestamps(self):
        """Events fire sorted by (time, scheduling order) — always."""
        for trial in range(5):
            rng = random.Random(100 + trial)
            sim = Simulator()
            fired = []
            expected = []
            seq = 0
            for _ in range(500):
                t = rng.randrange(0, 50)  # dense: many exact collisions
                tag = (t, seq)
                seq += 1
                expected.append(tag)
                sim.at(t, lambda tag=tag: fired.append(tag))
            sim.run()
            assert fired == sorted(expected)

    def test_total_order_with_nested_scheduling_and_cancels(self):
        """Scheduling from callbacks and cancelling keep the order total."""
        rng = random.Random(42)
        sim = Simulator()
        fired = []
        victims = []

        def spawn(depth):
            def fn():
                fired.append(sim.now)
                if depth > 0:
                    delay = rng.randrange(0, 3)
                    sim.schedule(delay, spawn(depth - 1))
                    doomed = sim.schedule(delay, lambda: fired.append(-1))
                    victims.append(doomed)
                    doomed.cancel()

            return fn

        for _ in range(50):
            sim.at(rng.randrange(0, 10), spawn(4))
        sim.run()
        assert -1 not in fired, "a cancelled event fired"
        assert fired == sorted(fired), "time went backwards"
        assert all(v.cancelled for v in victims)


# ----------------------------------------------------------------------
# Hermeticity
# ----------------------------------------------------------------------


class TestHermeticity:
    def test_back_to_back_runs_are_bit_identical(self):
        """reset_flow_ids() makes run results process-history independent."""
        spec = build_scenario(
            "permutation",
            kind="tcp",  # flow ids feed the push fabric's ECMP hash
            topology=_TINY_ONE_TIER,
            warmup_ns=50 * MICROSECOND,
            measure_ns=150 * MICROSECOND,
        )
        first, net1 = run_spec_with_network(spec)
        # Pollute the process's global flow-id space with an unrelated
        # run, then repeat: the digest (event counts, rate vectors,
        # histogram hashes) must not move.
        run_spec(spec.with_updates(seed=spec.seed + 1))
        second, net2 = run_spec_with_network(spec)
        assert first.to_dict() == second.to_dict()
        assert run_digest(first, net1) == run_digest(second, net2)
